//! Result formatting: fixed-width console tables plus JSON artifacts under
//! `results/`.

use std::fmt::Write as _;

/// Schema version stamped into every `results/*.json` artifact, so
/// downstream tooling can detect layout changes instead of guessing from
/// field shapes. Bump when an artifact's structure changes incompatibly.
pub const RESULTS_SCHEMA_VERSION: u32 = 1;

/// A simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a pretty-printed JSON artifact under `results/`.
pub fn write_json(name: &str, value: &impl serde::Serialize) {
    write_artifact(name, serde_json::to_string_pretty(value));
}

/// Writes a compact (single-line) JSON artifact under `results/` — for
/// artifacts carrying per-invocation traces, where pretty-printing
/// multiplies the size several-fold.
pub fn write_json_compact(name: &str, value: &impl serde::Serialize) {
    write_artifact(name, serde_json::to_string(value));
}

fn write_artifact(name: &str, encoded: Result<String, serde_json::Error>) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    match encoded {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                eprintln!("[results] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[results] failed to serialise {name}: {e}"),
    }
}

/// Formats a factor like `2.14x`.
pub fn fx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `89.41%`.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.50x".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fx(2.138), "2.14x");
        assert_eq!(pct(89.411), "89.41%");
    }
}
