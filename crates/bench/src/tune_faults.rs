//! Fault-tolerance sweep over the development-time tuner — the body of the
//! `tune_faults` binary.
//!
//! Injects deterministic faults (transient errors, panics, stalls,
//! poisoned QoS/perf readings) into every candidate evaluation at a range
//! of per-attempt fault rates, and reports how the supervised tuning
//! pipeline holds up: faults absorbed, retries spent, candidates
//! quarantined or skipped, and how close the final curve stays to the
//! zero-fault run. Also demonstrates crash recovery: the highest-rate run
//! is repeated with a checkpoint + forced halt + resume, and the resumed
//! result is compared bit-for-bit against the uninterrupted one. Results go
//! to `results/fault_tolerance.json`.
//!
//! Environment: `AT_BENCH` selects the benchmark (`lenet` default,
//! `alexnet`, `alexnet2`, `resnet18`), `AT_FAULT_RATES` a comma-separated
//! rate list (default `0,0.05,0.1,0.2,0.3`), `AT_FAULT_SEED` the injection
//! seed, plus the usual harness sizing variables (`AT_SAMPLES`,
//! `AT_ITERS`, …).

use crate::harness::{Prepared, Sizing};
use crate::report::{fx, Table};
use at_core::checkpoint::{CheckpointPolicy, SearchCheckpoint};
use at_core::fault::{FaultMix, FaultPlan};
use at_core::predict::PredictionModel;
use at_core::supervise::{FaultStats, SupervisionPolicy};
use at_core::tuner::{RobustnessParams, TunerParams, TuningResult};
use at_models::BenchmarkId;

/// One row of the fault-rate sweep.
#[derive(serde::Serialize)]
struct RateRow {
    fault_rate: f64,
    curve_points: usize,
    best_speedup: f64,
    best_vs_clean: f64,
    iterations: usize,
    search_time_s: f64,
    faults: FaultStats,
}

/// The crash-recovery demonstration at the highest sweep rate.
#[derive(serde::Serialize)]
struct ResumeDemo {
    fault_rate: f64,
    halted_after_rounds: usize,
    resume_bit_identical: bool,
}

/// The whole artifact written to `results/fault_tolerance.json`.
#[derive(serde::Serialize)]
struct Artifact {
    schema_version: u32,
    benchmark: String,
    qos_min: f64,
    fault_seed: u64,
    sweep: Vec<RateRow>,
    resume: ResumeDemo,
}

fn rates_from_env() -> Vec<f64> {
    std::env::var("AT_FAULT_RATES")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![0.0, 0.05, 0.1, 0.2, 0.3])
}

fn robustness(rate: f64, seed: u64) -> RobustnessParams {
    RobustnessParams {
        fault_plan: (rate > 0.0).then(|| FaultPlan {
            rate,
            seed,
            mix: FaultMix::default(),
            stall_ms: 0,
        }),
        supervision: SupervisionPolicy {
            backoff_ms: 0,
            ..SupervisionPolicy::default()
        },
        ..RobustnessParams::default()
    }
}

fn best_speedup(r: &TuningResult) -> f64 {
    r.curve.points().iter().map(|p| p.perf).fold(1.0, f64::max)
}

/// Runs the sweep, prints the summary table, writes the JSON artifact.
pub fn run() {
    let sizing = Sizing::from_env();
    let id = match std::env::var("AT_BENCH").as_deref() {
        Ok("alexnet") => BenchmarkId::AlexNetImageNet,
        Ok("alexnet2") => BenchmarkId::AlexNet2,
        Ok("resnet18") => BenchmarkId::ResNet18,
        _ => BenchmarkId::LeNet,
    };
    let fault_seed = std::env::var("AT_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xF417u64);
    let rates = rates_from_env();

    eprintln!("[tune_faults] preparing {} …", id.name());
    let p = Prepared::new(id, sizing);
    let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    let base_params = p.params(3.0, PredictionModel::Pi1, sizing);

    let tune_at = |robust: RobustnessParams| -> TuningResult {
        let params = TunerParams {
            robustness: robust,
            ..base_params.clone()
        };
        p.tune(&profiles, &params)
    };

    // The sweep.
    let mut sweep = Vec::new();
    let mut clean_best = 1.0;
    for &rate in &rates {
        eprintln!("[tune_faults] tuning at fault rate {rate} …");
        let r = tune_at(robustness(rate, fault_seed));
        let best = best_speedup(&r);
        if rate == 0.0 {
            clean_best = best;
        }
        sweep.push(RateRow {
            fault_rate: rate,
            curve_points: r.curve.len(),
            best_speedup: best,
            best_vs_clean: best / clean_best.max(1e-12),
            iterations: r.iterations,
            search_time_s: r.search_time_s,
            faults: r.faults,
        });
    }

    // Crash recovery at the highest rate: checkpoint, halt mid-search,
    // resume from disk, and compare against the uninterrupted run.
    let demo_rate = rates.iter().cloned().fold(0.0, f64::max);
    let halt_after = 4usize;
    let ckpt_path = std::path::Path::new("target").join("tune_faults.ckpt.json");
    eprintln!("[tune_faults] crash-recovery demo at rate {demo_rate} …");
    let uninterrupted = tune_at(robustness(demo_rate, fault_seed));
    let halted = tune_at(RobustnessParams {
        checkpoint: Some(CheckpointPolicy::new(2, &ckpt_path)),
        halt_after_rounds: Some(halt_after),
        ..robustness(demo_rate, fault_seed)
    });
    let resumed = match SearchCheckpoint::load(&ckpt_path) {
        Ok(ckpt) => Some(tune_at(RobustnessParams {
            resume_from: Some(ckpt),
            ..robustness(demo_rate, fault_seed)
        })),
        Err(e) => {
            eprintln!("[tune_faults] checkpoint load failed: {e}");
            None
        }
    };
    let resume_bit_identical = resumed.as_ref().is_some_and(|r| {
        r.curve.to_json() == uninterrupted.curve.to_json()
            && r.telemetry == uninterrupted.telemetry
            && r.faults == uninterrupted.faults
            && r.iterations == uninterrupted.iterations
    });
    let _ = std::fs::remove_file(&ckpt_path);

    // Console summary.
    let mut t = Table::new(&[
        "rate", "absorbed", "retries", "quarant.", "skipped", "curve", "best", "vs clean", "iters",
    ]);
    for row in &sweep {
        t.row(vec![
            format!("{:.2}", row.fault_rate),
            row.faults.faults_absorbed().to_string(),
            row.faults.retries.to_string(),
            row.faults.quarantined.to_string(),
            row.faults.skipped.to_string(),
            row.curve_points.to_string(),
            fx(row.best_speedup),
            format!("{:.3}", row.best_vs_clean),
            row.iterations.to_string(),
        ]);
    }
    t.print();
    println!(
        "crash recovery at rate {:.2}: halted after {} rounds, resume bit-identical: {}",
        demo_rate,
        if halted.halted { halt_after } else { 0 },
        resume_bit_identical
    );

    let artifact = Artifact {
        schema_version: crate::report::RESULTS_SCHEMA_VERSION,
        benchmark: id.name().to_string(),
        qos_min: base_params.qos_min,
        fault_seed,
        sweep,
        resume: ResumeDemo {
            fault_rate: demo_rate,
            halted_after_rounds: if halted.halted { halt_after } else { 0 },
            resume_bit_identical,
        },
    };
    crate::report::write_json_compact("fault_tolerance", &artifact);
}
