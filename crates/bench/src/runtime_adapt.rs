//! Closed-loop runtime adaptation under injected hardware disturbances
//! (§5, evaluated in §6.4) — the body of the `runtime_adapt` binary.
//!
//! Regenerates the paper's frequency-change adaptation figure with the
//! `at_core::closed_loop` driver: a per-invocation time series of sensed
//! frequency, selected configuration, achieved speedup and QoS, under four
//! scripted scenarios against the simulated TX2 — the 12-step DVFS sweep,
//! a thermal-throttling ramp, a brownout plus load spike, and a sensor
//! dropout. Both control policies run over the same shipped curve; all
//! traces are deterministic (seeded) and written to
//! `results/runtime_adapt.json`.
//!
//! Environment: `AT_BENCH` selects the benchmark (`resnet18` default,
//! `alexnet`, `alexnet2`), `AT_WINDOW` the sliding-window length (default
//! 1 batch, as in the paper), `AT_DWELL` the feedback hysteresis dwell,
//! plus the usual harness sizing variables (`AT_SAMPLES`, `AT_ITERS`, …).

use crate::harness::{Prepared, Sizing};
use crate::report::Table;
use at_core::closed_loop::{run_closed_loop, ClosedLoopParams, ClosedLoopReport};
use at_core::install::EdgeDevice;
use at_core::perf::PerfModel;
use at_core::predict::PredictionModel;
use at_core::qos::QosMetric;
use at_core::runtime::Policy;
use at_hw::{Disturbance, DisturbedDevice, FrequencyLadder, Scenario};
use at_models::BenchmarkId;

/// Per-ladder-step aggregate of the DVFS-sweep figure.
#[derive(serde::Serialize)]
struct SweepStepRow {
    freq_mhz: f64,
    static_norm_time: f64,
    static_norm_time_roofline: f64,
    dynamic_norm_time_p1: f64,
    dynamic_norm_time_p2: f64,
    qos_p1: f64,
    qos_p2: f64,
}

/// The whole artifact written to `results/runtime_adapt.json`.
#[derive(serde::Serialize)]
struct Artifact {
    schema_version: u32,
    benchmark: String,
    baseline_time_s: f64,
    baseline_qos: f64,
    curve_points: usize,
    curve_max_speedup: f64,
    sweep_figure: Vec<SweepStepRow>,
    runs: Vec<ClosedLoopReport>,
}

fn scenarios(batches_per_freq: usize) -> Vec<Scenario> {
    let ladder = FrequencyLadder::tx2_gpu();
    vec![
        Scenario::tx2_dvfs_sweep(batches_per_freq),
        Scenario::new("thermal-throttle", ladder.clone(), 240, 11).with(Disturbance::ThermalRamp {
            at: 40,
            len: 80,
            floor_idx: 8,
        }),
        Scenario::new("brownout-spike", ladder.clone(), 240, 12)
            .with(Disturbance::Brownout {
                at: 40,
                len: 60,
                frequency_factor: 0.65,
            })
            .with(Disturbance::LoadSpike {
                at: 140,
                len: 60,
                time_factor: 1.6,
            })
            .with(Disturbance::TimingJitter { amplitude: 0.01 }),
        Scenario::new("sensor-dropout", ladder, 240, 13)
            .with(Disturbance::SensorDropout { at: 40, len: 120 })
            .with(Disturbance::GovernorStep {
                at: 60,
                ladder_idx: 7,
            }),
    ]
}

/// Mean normalised time of the *static* (no adaptation) program under a
/// scenario — what Figure 6 plots as the growing dashed line.
fn static_mean_norm(device: &DisturbedDevice, baseline: f64) -> f64 {
    let n = device.scenario().invocations();
    (0..n)
        .map(|i| device.invocation_time(&device.state_at(i), baseline, 1.0) / baseline)
        .sum::<f64>()
        / n.max(1) as f64
}

/// Runs the whole experiment: tune + refine a curve, replay every scenario
/// under both policies, print the summary tables and write the JSON
/// artifact.
pub fn run() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    let id = match std::env::var("AT_BENCH").as_deref() {
        Ok("alexnet") => BenchmarkId::AlexNetImageNet,
        Ok("alexnet2") => BenchmarkId::AlexNet2,
        _ => BenchmarkId::ResNet18,
    };
    let window = std::env::var("AT_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let min_dwell = std::env::var("AT_DWELL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let batches_per_freq = 20usize;

    eprintln!("[runtime_adapt] preparing {} …", id.name());
    let p = Prepared::new(id, sizing);
    let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    let params = p.params(3.0, PredictionModel::Pi1, sizing);
    let dev_result = p.tune(&profiles, &params);
    let reference = p.cal_reference();
    let curve = at_core::install::refine_software_only(
        &p.bench.graph,
        &p.registry,
        &device,
        at_core::install::InstallObjective::Speedup,
        &dev_result.curve,
        &p.cal.batches,
        QosMetric::Accuracy,
        &reference,
        params.qos_min,
        p.cal.batches[0].shape(),
        0,
    )
    .expect("refinement succeeds");
    let baseline_qos = p.baseline_cal_accuracy();

    let perf =
        PerfModel::new(&p.bench.graph, &p.registry, p.cal.batches[0].shape()).expect("perf model");
    let baseline_cfg = at_core::Config::baseline(&p.bench.graph);
    let base_time = perf.device_time(&baseline_cfg, &device.timing, &device.promise);
    let max_speedup = curve.points().iter().map(|q| q.perf).fold(1.0, f64::max);
    eprintln!(
        "[runtime_adapt] curve: {} points, max speedup {max_speedup:.2}x, baseline {base_time:.4}s",
        curve.len()
    );

    let mut runs: Vec<ClosedLoopReport> = Vec::new();
    let mut summary = Table::new(&[
        "Scenario",
        "Policy",
        "Static time (norm)",
        "Dynamic time (norm)",
        "Hit rate (2%)",
        "Switches",
        "Breaches",
        "QoS drop (pp)",
    ]);
    for scenario in scenarios(batches_per_freq) {
        let disturbed = DisturbedDevice::new(scenario, device.power.clone());
        let static_norm = static_mean_norm(&disturbed, base_time);
        for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
            let report = run_closed_loop(
                &curve,
                base_time,
                &disturbed,
                &ClosedLoopParams {
                    policy,
                    window,
                    min_dwell,
                    seed: 7,
                    baseline_qos,
                },
            );
            summary.row(vec![
                report.scenario.clone(),
                report.policy.clone(),
                format!("{static_norm:.2}"),
                format!("{:.3}", report.mean_norm_time),
                format!("{:.0}%", 100.0 * report.target_hit_rate(0.02)),
                format!("{}", report.switches),
                format!("{}", report.breaches),
                format!("{:.2}", baseline_qos - report.mean_qos),
            ]);
            runs.push(report);
        }
    }

    // Per-ladder-step aggregation of the sweep runs — the figure's x-axis.
    let ladder = FrequencyLadder::tx2_gpu();
    let (p1, p2) = (&runs[0], &runs[1]);
    let mut sweep_figure = Vec::new();
    let mut fig_table = Table::new(&[
        "Freq (MHz)",
        "Static (norm)",
        "Roofline (norm)",
        "P1 dyn (norm)",
        "P2 dyn (norm)",
        "P1 QoS",
        "P2 QoS",
    ]);
    let roofline_base = base_time;
    for step in 0..ladder.len() {
        let lo = step * batches_per_freq;
        let hi = lo + batches_per_freq;
        let mean = |rows: &[at_core::closed_loop::TraceRow],
                    f: fn(&at_core::closed_loop::TraceRow) -> f64| {
            rows[lo..hi].iter().map(f).sum::<f64>() / batches_per_freq as f64
        };
        // The roofline static time uses the full timing model at the step's
        // clock: memory-bound layers flatten the slowdown slightly below
        // the compute-bound `f_nominal / f` line.
        let throttled = device.timing.clone().with_frequency_mhz(ladder.at(step));
        let roofline = perf.device_time(&baseline_cfg, &throttled, &device.promise) / roofline_base;
        let row = SweepStepRow {
            freq_mhz: ladder.at(step),
            static_norm_time: ladder.slowdown(step),
            static_norm_time_roofline: roofline,
            dynamic_norm_time_p1: mean(&p1.trace, |r| r.norm_time),
            dynamic_norm_time_p2: mean(&p2.trace, |r| r.norm_time),
            qos_p1: mean(&p1.trace, |r| r.qos),
            qos_p2: mean(&p2.trace, |r| r.qos),
        };
        fig_table.row(vec![
            format!("{:.0}", row.freq_mhz),
            format!("{:.2}", row.static_norm_time),
            format!("{:.2}", row.static_norm_time_roofline),
            format!("{:.2}", row.dynamic_norm_time_p1),
            format!("{:.2}", row.dynamic_norm_time_p2),
            format!("{:.2}", row.qos_p1),
            format!("{:.2}", row.qos_p2),
        ]);
        sweep_figure.push(row);
    }

    println!(
        "\nRuntime adaptation ({}): closed loop under injected disturbances\n",
        id.name()
    );
    summary.print();
    println!("\nDVFS sweep, per frequency step (dynamic stays near 1.0 while QoS degrades):\n");
    fig_table.print();

    crate::report::write_json_compact(
        "runtime_adapt",
        &Artifact {
            schema_version: crate::report::RESULTS_SCHEMA_VERSION,
            benchmark: id.name().to_string(),
            baseline_time_s: base_time,
            baseline_qos,
            curve_points: curve.len(),
            curve_max_speedup: max_speedup,
            sweep_figure,
            runs,
        },
    );
}
