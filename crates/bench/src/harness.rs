//! Shared experiment setup: benchmarks, datasets, profiles and tuning runs.

use at_core::knobs::{KnobRegistry, KnobSet};
use at_core::predict::PredictionModel;
use at_core::profile::{collect_profiles, QosProfiles};
use at_core::qos::{QosMetric, QosReference};
use at_core::tuner::{PredictiveTuner, TunerParams, TuningResult};
use at_models::data::{build_dataset, Dataset};
use at_models::{build, Benchmark, BenchmarkId, ModelScale};

/// Harness-wide experiment sizing, controlled by `AT_SAMPLES` / `AT_BATCH`
/// / `AT_ITERS` / `AT_CONV` environment variables so every figure binary
/// can be scaled up without recompiling.
#[derive(Clone, Copy, Debug)]
pub struct Sizing {
    /// Total synthetic samples per benchmark (split 50/50 calibration/test,
    /// as in §6).
    pub samples: usize,
    /// Batch size.
    pub batch: usize,
    /// Maximum autotuning iterations.
    pub max_iters: usize,
    /// Convergence window (iterations without improvement).
    pub convergence: usize,
}

impl Sizing {
    /// Reads the sizing from the environment with quick defaults.
    pub fn from_env() -> Sizing {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Sizing {
            samples: get("AT_SAMPLES", 64),
            batch: get("AT_BATCH", 16),
            max_iters: get("AT_ITERS", 400),
            convergence: get("AT_CONV", 150),
        }
    }
}

/// A fully prepared benchmark: graph, calibration/test datasets, registry.
pub struct Prepared {
    /// The model.
    pub bench: Benchmark,
    /// Calibration split (used for profiling/tuning).
    pub cal: Dataset,
    /// Test split (used for reporting).
    pub test: Dataset,
    /// The knob registry.
    pub registry: KnobRegistry,
}

impl Prepared {
    /// Builds a benchmark with its synthetic dataset.
    pub fn new(id: BenchmarkId, sizing: Sizing) -> Prepared {
        let bench = build(id, ModelScale::Tiny);
        let ds = build_dataset(&bench, sizing.samples, sizing.batch, 0xD5EED ^ id as u64);
        let (cal, test) = ds.split();
        Prepared {
            bench,
            cal,
            test,
            registry: KnobRegistry::new(),
        }
    }

    /// QoS reference over the calibration labels.
    pub fn cal_reference(&self) -> QosReference {
        QosReference::Labels(self.cal.labels.clone())
    }

    /// QoS reference over the test labels.
    pub fn test_reference(&self) -> QosReference {
        QosReference::Labels(self.test.labels.clone())
    }

    /// Measured baseline accuracy on the calibration split.
    pub fn baseline_cal_accuracy(&self) -> f64 {
        let reference = self.cal_reference();
        at_core::profile::measure_config(
            &self.bench.graph,
            &self.registry,
            &at_core::Config::baseline(&self.bench.graph),
            &self.cal.batches,
            QosMetric::Accuracy,
            &reference,
            0,
        )
        .expect("baseline runs")
    }

    /// Collects (or loads from the on-disk cache) the QoS profiles for a
    /// knob set. Tensor (Π1) profiles are always collected so a single
    /// cache entry serves both predictors.
    pub fn profiles(&self, set: KnobSet) -> QosProfiles {
        let tag = match set {
            KnobSet::HardwareIndependent => "hwi",
            KnobSet::WithHardware => "hw",
        };
        let dir = std::path::Path::new("target/at-profile-cache");
        let path = dir.join(format!(
            "{}-{}-{}x{}.json",
            self.bench.id.name(),
            tag,
            self.cal.len(),
            self.cal.classes,
        ));
        if let Ok(s) = std::fs::read_to_string(&path) {
            if let Ok(p) = serde_json::from_str::<CachedProfiles>(&s) {
                return p.into();
            }
        }
        let reference = self.cal_reference();
        let profiles = collect_profiles(
            &self.bench.graph,
            &self.registry,
            set,
            &self.cal.batches,
            QosMetric::Accuracy,
            &reference,
            true,
            0,
        )
        .expect("profile collection succeeds");
        let _ = std::fs::create_dir_all(dir);
        if let Ok(s) = serde_json::to_string(&CachedProfiles::from(&profiles)) {
            let _ = std::fs::write(&path, s);
        }
        profiles
    }

    /// Default tuner parameters for a QoS-drop target (percentage points
    /// below the measured calibration baseline).
    pub fn params(&self, qos_drop: f64, model: PredictionModel, sizing: Sizing) -> TunerParams {
        TunerParams {
            qos_min: self.baseline_cal_accuracy() - qos_drop,
            n_calibrate: 10,
            max_iters: sizing.max_iters,
            convergence_window: sizing.convergence,
            max_validated: std::env::var("AT_MAXCFG")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(30),
            max_shipped: std::env::var("AT_MAXCFG")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(30),
            knob_set: KnobSet::HardwareIndependent,
            model,
            calibrate: true,
            seed: 0xA99 ^ self.bench.id as u64,
            batch_size: std::env::var("AT_BATCH_SIZE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(16),
            robustness: at_core::tuner::RobustnessParams::default(),
        }
    }

    /// Runs development-time predictive tuning.
    pub fn tune(&self, profiles: &QosProfiles, params: &TunerParams) -> TuningResult {
        let reference = self.cal_reference();
        let tuner = PredictiveTuner {
            graph: &self.bench.graph,
            registry: &self.registry,
            inputs: &self.cal.batches,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: self.cal.batches[0].shape(),
            promise_seed: 0,
        };
        tuner.tune(profiles, params).expect("tuning succeeds")
    }
}

/// Serialisable mirror of [`QosProfiles`] for the disk cache.
#[derive(serde::Serialize, serde::Deserialize)]
struct CachedProfiles {
    pairs: Vec<(usize, at_core::knobs::KnobId)>,
    qos_base: f64,
    t_base: Vec<at_tensor::Tensor>,
    dq: Vec<f64>,
    dt: Vec<Vec<at_tensor::Tensor>>,
    collection_time_s: f64,
}

impl From<&QosProfiles> for CachedProfiles {
    fn from(p: &QosProfiles) -> Self {
        CachedProfiles {
            pairs: p.pairs.clone(),
            qos_base: p.qos_base,
            t_base: p.t_base.clone(),
            dq: p.dq.clone(),
            dt: p.dt.clone(),
            collection_time_s: p.collection_time_s,
        }
    }
}

impl From<CachedProfiles> for QosProfiles {
    fn from(c: CachedProfiles) -> Self {
        QosProfiles {
            pairs: c.pairs,
            qos_base: c.qos_base,
            t_base: c.t_base,
            dq: c.dq,
            dt: c.dt,
            collection_time_s: c.collection_time_s,
        }
    }
}

/// A curve point evaluated on the simulated device and the test split.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Evaluated {
    /// Device-model speedup over the FP32 baseline.
    pub speedup: f64,
    /// Device-model energy-reduction factor.
    pub energy_reduction: f64,
    /// Accuracy on the held-out test split (%).
    pub test_accuracy: f64,
    /// Accuracy drop vs the test baseline (percentage points).
    pub test_drop: f64,
    /// Knob histogram of the selected configuration (Table 3 style).
    pub histogram: Vec<(String, usize)>,
}

impl Prepared {
    /// Picks the best point of a tradeoff curve under the calibration QoS
    /// bound, then evaluates it on the device model (`device`) and the test
    /// split. Returns `None` when no curve point satisfies the bound.
    pub fn evaluate_best(
        &self,
        curve: &at_core::TradeoffCurve,
        qos_min: f64,
        device: &at_core::install::EdgeDevice,
    ) -> Option<Evaluated> {
        let perf = at_core::perf::PerfModel::new(
            &self.bench.graph,
            &self.registry,
            self.cal.batches[0].shape(),
        )
        .ok()?;
        // Best device speedup among constraint-satisfying points.
        let best = curve
            .points()
            .iter()
            .filter(|p| p.qos >= qos_min)
            .max_by(|a, b| {
                let sa = perf.device_speedup(&a.config, &device.timing, &device.promise);
                let sb = perf.device_speedup(&b.config, &device.timing, &device.promise);
                sa.partial_cmp(&sb).unwrap()
            })?;
        let speedup = perf.device_speedup(&best.config, &device.timing, &device.promise);
        let energy_reduction = perf.device_energy_reduction(
            &best.config,
            &device.timing,
            &device.promise,
            &device.power,
        );
        let test_ref = self.test_reference();
        let test_accuracy = at_core::profile::measure_config(
            &self.bench.graph,
            &self.registry,
            &best.config,
            &self.test.batches,
            QosMetric::Accuracy,
            &test_ref,
            0,
        )
        .ok()?;
        let base_test = at_core::profile::measure_config(
            &self.bench.graph,
            &self.registry,
            &at_core::Config::baseline(&self.bench.graph),
            &self.test.batches,
            QosMetric::Accuracy,
            &test_ref,
            0,
        )
        .ok()?;
        Some(Evaluated {
            speedup,
            energy_reduction,
            test_accuracy,
            test_drop: base_test - test_accuracy,
            histogram: best
                .config
                .coarse_histogram(&self.registry, &self.bench.graph),
        })
    }
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn prepared_lenet_smoke() {
        let sizing = Sizing {
            samples: 24,
            batch: 12,
            max_iters: 30,
            convergence: 30,
        };
        let p = Prepared::new(BenchmarkId::LeNet, sizing);
        assert_eq!(p.cal.len(), 12);
        assert_eq!(p.test.len(), 12);
        let acc = p.baseline_cal_accuracy();
        assert!(acc > 50.0, "calibrated baseline accuracy {acc}");
    }
}
