//! Kernel micro-benchmark: wall-clock speed of the tiled/SIMD GEMM and
//! im2col conv kernels against the frozen naive reference, per knob
//! family, writing `BENCH_kernels.json` at the repo root.
//!
//! Two headline numbers back the fast-kernel claims:
//!
//! * the optimized exact FP32 matmul vs the naive triple loop on the
//!   largest measured square GEMM (the register-blocked panels eliminate
//!   the per-`k` output-row read-modify-write traffic, which is worth
//!   several × even single-threaded);
//! * k=2 column perforation vs the exact conv on the same shape (skipped
//!   output columns are pruned from the patch matrix *before* the GEMM,
//!   so the saving is real executed work, cross-checked by the multiply
//!   counter in `tests/skipwork.rs`).
//!
//! Sizing is env-tunable so CI can smoke-run it in seconds:
//! `AT_BENCH_DIM` caps the largest matmul dimension (default 512),
//! `AT_BENCH_REPS` the repetitions per measurement (default 7, best-of);
//! the legacy `AT_KERNELS_*` names still work as aliases (see
//! [`crate::env`]).

use crate::report;
use at_tensor::ops::conv::Conv2dParams;
use at_tensor::ops::{conv2d, matmul_ex, reference};
use at_tensor::{ConvApprox, MulApprox, PerforationDim, Precision, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One timed knob setting on a fixed shape.
#[derive(serde::Serialize)]
pub struct KnobTiming {
    /// Knob-family label (registry mnemonics where they exist).
    pub label: String,
    /// Best-of-reps wall-clock seconds per invocation.
    pub time_s: f64,
    /// Speedup over the optimized exact FP32 kernel on the same shape.
    pub speedup_vs_exact: f64,
}

/// Per-shape matmul results.
#[derive(serde::Serialize)]
pub struct MatmulRow {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Naive reference (the pre-optimization kernel), seconds.
    pub naive_s: f64,
    /// Optimized exact FP32 kernel, seconds.
    pub exact_s: f64,
    /// naive / exact — the tiling/SIMD win at identical bit-level results.
    pub speedup_vs_naive: f64,
    pub knobs: Vec<KnobTiming>,
}

/// Per-shape conv results.
#[derive(serde::Serialize)]
pub struct ConvRow {
    pub input: Vec<usize>,
    pub weight: Vec<usize>,
    pub naive_s: f64,
    pub exact_s: f64,
    pub speedup_vs_naive: f64,
    pub knobs: Vec<KnobTiming>,
}

/// The whole `BENCH_kernels.json` artifact.
#[derive(serde::Serialize)]
pub struct Artifact {
    pub schema_version: u32,
    pub bench: String,
    pub reps: usize,
    pub threads: usize,
    pub matmul: Vec<MatmulRow>,
    pub conv: Vec<ConvRow>,
    /// naive/exact on the largest measured square GEMM.
    pub headline_matmul_speedup: f64,
    /// exact/perforated(k=2, col) conv time on the largest conv shape.
    pub headline_perforation_speedup: f64,
}

fn tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::uniform(shape, -1.0, 1.0, &mut rng)
}

/// Best-of-reps wall clock: the minimum is the standard low-noise estimator
/// for a deterministic kernel — every slower sample is the same work plus
/// interference, so the smallest observation is the closest to the true
/// cost. Applied identically to the reference and optimized kernels.
fn best_s(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_matmul(dim: usize, reps: usize) -> MatmulRow {
    let (m, k, n) = (dim, dim, dim);
    let a = tensor(Shape::mat(m, k), 0xA0 + dim as u64);
    let b = tensor(Shape::mat(k, n), 0xB0 + dim as u64);
    let naive_s = best_s(reps, || {
        reference::matmul_reference(&a, &b, Precision::Fp32).unwrap();
    });
    let exact_s = best_s(reps, || {
        matmul_ex(&a, &b, None, Precision::Fp32, MulApprox::Exact).unwrap();
    });
    let knob_settings: [(&str, Precision, MulApprox); 4] = [
        ("fp16", Precision::Fp16, MulApprox::Exact),
        ("lutmul-8b", Precision::Fp32, MulApprox::Lut { bits: 8 }),
        ("lutmul-6b", Precision::Fp32, MulApprox::Lut { bits: 6 }),
        ("lutmul-4b", Precision::Fp32, MulApprox::Lut { bits: 4 }),
    ];
    let knobs = knob_settings
        .iter()
        .map(|&(label, precision, mul)| {
            let t = best_s(reps, || {
                matmul_ex(&a, &b, None, precision, mul).unwrap();
            });
            KnobTiming {
                label: label.to_string(),
                time_s: t,
                speedup_vs_exact: exact_s / t.max(1e-12),
            }
        })
        .collect();
    MatmulRow {
        m,
        k,
        n,
        naive_s,
        exact_s,
        speedup_vs_naive: naive_s / exact_s.max(1e-12),
        knobs,
    }
}

fn bench_conv(input: Shape, weight: Shape, reps: usize) -> ConvRow {
    let x = tensor(input, 0xC0);
    let w = tensor(weight, 0xD0);
    let params = |approx, precision, mul| Conv2dParams {
        pad: (1, 1),
        stride: (1, 1),
        groups: 1,
        approx,
        precision,
        mul,
    };
    let exact_p = params(ConvApprox::Exact, Precision::Fp32, MulApprox::Exact);
    let naive_s = best_s(reps, || {
        reference::conv2d_reference(&x, &w, None, exact_p).unwrap();
    });
    let exact_s = best_s(reps, || {
        conv2d(&x, &w, None, exact_p).unwrap();
    });
    let knob_settings: [(&str, ConvApprox, Precision, MulApprox); 5] = [
        ("fp16", ConvApprox::Exact, Precision::Fp16, MulApprox::Exact),
        (
            "samp-50%-o0-fp32",
            ConvApprox::FilterSampling { k: 2, offset: 0 },
            Precision::Fp32,
            MulApprox::Exact,
        ),
        (
            "perf-50%-row-o0-fp32",
            ConvApprox::Perforation {
                dim: PerforationDim::Row,
                k: 2,
                offset: 0,
            },
            Precision::Fp32,
            MulApprox::Exact,
        ),
        (
            "perf-50%-col-o0-fp32",
            ConvApprox::Perforation {
                dim: PerforationDim::Col,
                k: 2,
                offset: 0,
            },
            Precision::Fp32,
            MulApprox::Exact,
        ),
        (
            "lutmul-8b",
            ConvApprox::Exact,
            Precision::Fp32,
            MulApprox::Lut { bits: 8 },
        ),
    ];
    let knobs = knob_settings
        .iter()
        .map(|&(label, approx, precision, mul)| {
            let p = params(approx, precision, mul);
            let t = best_s(reps, || {
                conv2d(&x, &w, None, p).unwrap();
            });
            KnobTiming {
                label: label.to_string(),
                time_s: t,
                speedup_vs_exact: exact_s / t.max(1e-12),
            }
        })
        .collect();
    ConvRow {
        input: input.dims().to_vec(),
        weight: weight.dims().to_vec(),
        naive_s,
        exact_s,
        speedup_vs_naive: naive_s / exact_s.max(1e-12),
        knobs,
    }
}

/// Builds the full artifact (separated from [`run`] so the schema test can
/// validate a freshly built small artifact without touching the filesystem).
pub fn build_artifact(max_dim: usize, reps: usize) -> Artifact {
    let dims: Vec<usize> = [128usize, 256, 512]
        .iter()
        .copied()
        .filter(|&d| d <= max_dim)
        .chain((max_dim < 128).then_some(max_dim))
        .collect();
    let matmul: Vec<MatmulRow> = dims.iter().map(|&d| bench_matmul(d, reps)).collect();

    let scale = (max_dim >= 256) as usize;
    let conv_shapes = if scale == 1 {
        vec![
            (Shape::nchw(1, 16, 32, 32), Shape::nchw(32, 16, 3, 3)),
            (Shape::nchw(1, 32, 56, 56), Shape::nchw(64, 32, 3, 3)),
        ]
    } else {
        vec![(Shape::nchw(1, 8, 16, 16), Shape::nchw(8, 8, 3, 3))]
    };
    let conv: Vec<ConvRow> = conv_shapes
        .iter()
        .map(|&(i, w)| bench_conv(i, w, reps))
        .collect();

    let headline_matmul_speedup = matmul.last().map_or(1.0, |r| r.speedup_vs_naive);
    let headline_perforation_speedup = conv
        .last()
        .and_then(|r| {
            r.knobs
                .iter()
                .find(|t| t.label.starts_with("perf-50%-col"))
                .map(|t| t.speedup_vs_exact)
        })
        .unwrap_or(1.0);

    Artifact {
        schema_version: report::RESULTS_SCHEMA_VERSION,
        bench: "kernels".to_string(),
        reps,
        threads: rayon::current_num_threads(),
        matmul,
        conv,
        headline_matmul_speedup,
        headline_perforation_speedup,
    }
}

/// Encodes an artifact as a JSON value tree (for validation in tests).
pub fn artifact_value(artifact: &Artifact) -> serde::Value {
    serde_json::to_value(artifact)
}

/// Runs the benchmark and writes `BENCH_kernels.json`.
pub fn run() {
    let max_dim = crate::env::usize_var("AT_BENCH_DIM", &["AT_KERNELS_DIM"], 512);
    let reps = crate::env::usize_var("AT_BENCH_REPS", &["AT_KERNELS_REPS"], 7);
    eprintln!("[kernels] max dim {max_dim}, {reps} reps (best-of)");
    let artifact = build_artifact(max_dim, reps);

    let mut table = report::Table::new(&["gemm", "naive", "exact", "speedup"]);
    for r in &artifact.matmul {
        table.row(vec![
            format!("{}x{}x{}", r.m, r.k, r.n),
            format!("{:.4}s", r.naive_s),
            format!("{:.4}s", r.exact_s),
            report::fx(r.speedup_vs_naive),
        ]);
    }
    table.print();
    let mut table = report::Table::new(&["conv", "knob", "time", "vs exact"]);
    for r in &artifact.conv {
        for t in &r.knobs {
            table.row(vec![
                format!("{:?}", r.input),
                t.label.clone(),
                format!("{:.4}s", t.time_s),
                report::fx(t.speedup_vs_exact),
            ]);
        }
    }
    table.print();
    eprintln!(
        "[kernels] headline: exact GEMM {} vs naive; k=2 col perforation {} vs exact conv",
        report::fx(artifact.headline_matmul_speedup),
        report::fx(artifact.headline_perforation_speedup),
    );
    report::write_bench_json("kernels", &artifact);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{envelope, validate_artifact};

    #[test]
    fn small_artifact_conforms_and_orders_sanely() {
        let a = build_artifact(32, 1);
        assert_eq!(a.matmul.len(), 1);
        assert!(!a.conv.is_empty());
        for r in &a.matmul {
            assert!(r.naive_s > 0.0 && r.exact_s > 0.0);
            assert_eq!(r.knobs.len(), 4);
        }
        let tree = envelope(artifact_value(&a));
        validate_artifact(&tree).expect("fresh kernels artifact must conform");
        let pairs = tree.as_object().unwrap();
        assert!(
            !pairs.iter().any(|(k, _)| k == "data"),
            "already versioned; must not be double-wrapped"
        );
    }
}
