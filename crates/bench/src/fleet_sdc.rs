//! Silent-data-corruption campaign — the body of the `fleet_sdc` binary
//! and the writer of `BENCH_sdc.json`.
//!
//! Three experiments in one artifact:
//!
//! 1. **Kernel detection coverage**: seeded single-bit flips injected into
//!    a GEMM's weight panel, activation buffer, and output accumulator
//!    (after checksum capture, modelling corruption landing post-pack),
//!    verified with [`verify_gemm_f32`] against the golden operands. The
//!    acceptance bar is ≥ 99% *coverage* across all targets and bits ≥ 16:
//!    each flip either trips the checksum or is ruled harmless by an f64
//!    ground-truth referee (its column perturbations all sit inside the
//!    checker's tolerance contract — e.g. a flip on a near-zero element,
//!    indistinguishable from rounding noise and within the approximation
//!    envelope the runtime already promises). Materially corrupting
//!    escapes must be zero.
//! 2. **ABFT overhead**: wall-clock of the checksummed GEMM vs the
//!    unprotected kernel at `AT_BENCH_ABFT_DIM`³ (default 512³), plus a
//!    bit-identity check of the protected output — the checksums must
//!    cost ≤ 10% and change nothing.
//! 3. **Fleet campaign**: the `serve_fleet` roster run under a sweep of
//!    bit-flip windows — a clean baseline, two protected campaigns at
//!    increasing flip rates, and a *stealth* phase whose flips land below
//!    the modelled detection floor so escapes stay measurable. Detected
//!    results never feed the QoS guard's residual window, so guard
//!    quarantine convictions must not grow with the flip rate; every
//!    phase must keep `requests_unaccounted = 0`, and the chaotic report
//!    must be bit-identical across rayon thread counts.
//!
//! Environment: `AT_BENCH_REQUESTS` (default 1,200,000),
//! `AT_BENCH_REPLICAS` (default 8), `AT_BENCH_SEED` (default 7),
//! `AT_BENCH_SDC_TRIALS` (kernel injections per target/bit, default 8),
//! `AT_BENCH_ABFT_DIM` (overhead GEMM dimension, default 512).

use crate::report::{
    bit_identical_across_threads, fx, pct, write_bench_json, Table, RESULTS_SCHEMA_VERSION,
};
use crate::serve_fleet::{executors, roster, LIAR};
use at_core::chaos::{ChaosPlan, FlipTarget};
use at_core::fleet::{run_fleet, FleetParams, FleetReport, RouterPolicy, SdcParams};
use at_core::serve::{RequestExecutor, ServeParams};
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};
use at_tensor::ops::gemm::{gemm_f32, Epilogue};
use at_tensor::ops::{flip_bit, gemm_f32_abft, verify_gemm_f32, AbftTol};

/// Kernel-level injection campaign results.
///
/// A flip whose ground-truth effect on the output is smaller than the
/// checker's tolerance contract (e.g. a mantissa flip on a near-zero
/// element) is indistinguishable from the kernel's own rounding noise —
/// no sound detector can flag it, and the result it produces is still
/// within the approximation envelope the runtime already promises. The
/// headline number is therefore *coverage*: every injected flip must be
/// either detected or proven (against f64 ground truth) to perturb each
/// output column by less than twice its checksum limit.
#[derive(serde::Serialize)]
pub struct KernelStats {
    /// GEMM shape used for injection, `MxKxN`.
    dims: String,
    /// Total flips injected (targets × bits 16..32 × trials).
    injected: usize,
    /// Flips caught by checksum verification.
    detected: usize,
    /// Escapes whose f64 ground-truth column perturbations are all within
    /// 2× the checksum limit — inside the approximation contract, so
    /// harmless by construction.
    bounded_escapes: usize,
    /// Escapes that materially corrupted the output (perturbation beyond
    /// the contract) — real detector failures. Must be zero.
    unbounded_escapes: usize,
    /// `100 · detected / injected` — raw detection rate, for reference.
    detection_pct: f64,
    /// `100 · (detected + bounded_escapes) / injected` — the headline
    /// coverage (bar: ≥ 99%).
    covered_pct: f64,
    /// Verification passes on *clean* outputs that wrongly tripped.
    clean_false_alarms: usize,
}

/// ABFT wall-clock overhead at the benchmark dimension.
#[derive(serde::Serialize)]
pub struct OverheadStats {
    /// Cubic GEMM dimension.
    dim: usize,
    /// Best-of-three unprotected GEMM time, milliseconds.
    plain_ms: f64,
    /// Best-of-three checksummed GEMM time, milliseconds.
    abft_ms: f64,
    /// `100 · (abft − plain) / plain`; the bar is ≤ 10%.
    overhead_pct: f64,
    /// Protected and unprotected outputs compared byte-for-byte.
    bit_identical: bool,
}

/// One phase of the fleet flip-rate sweep.
#[derive(serde::Serialize)]
pub struct PhaseStats {
    phase: String,
    /// Per-request flip probability inside active windows.
    flip_rate: f64,
    /// Lowest bit position the injector draws (the modelled ABFT floor is
    /// [`SdcParams::detect_bit_floor`]; below it flips escape).
    min_bit: u32,
    arrivals: usize,
    admitted: usize,
    on_time_pct: f64,
    sdc_detected: usize,
    sdc_reexecuted: usize,
    sdc_escaped: usize,
    sdc_false_alarm: usize,
    sdc_ejections: usize,
    /// Guard quarantine convictions of the roster's one *lying* tenant —
    /// these are honest guard work (the lie is real) and may grow as SDC
    /// ejections shift load between replicas.
    quarantined_points_liar: usize,
    /// Guard quarantine convictions of honest tenants — injected
    /// corruption must never inflate this beyond the baseline phase,
    /// because detected results are discarded before the residual window.
    quarantined_points_honest: usize,
    /// |arrivals − (admitted + shed)|; must be zero in every phase.
    requests_unaccounted: usize,
    mean_latency_ms: f64,
    /// Wall-clock seconds the simulation took (not simulated time).
    wall_s: f64,
    /// Simulated arrivals processed per wall-clock second.
    sim_rps: f64,
}

/// The whole `BENCH_sdc.json` artifact.
#[derive(serde::Serialize)]
pub struct Artifact {
    schema_version: u32,
    bench: String,
    replicas: usize,
    tenant_models: Vec<String>,
    requests_target: usize,
    seed: u64,
    scenario: String,
    horizon_s: f64,
    /// Kernel-level injection coverage.
    kernel: KernelStats,
    /// ABFT wall-clock cost.
    overhead: OverheadStats,
    /// Fleet-level detection coverage over the protected campaign phases
    /// (flips at or above the detection floor).
    fleet_detection_pct: f64,
    /// On-time percentage under the heaviest protected campaign.
    availability_pct: f64,
    /// Baseline on-time percentage minus the heaviest campaign's.
    availability_drop_pct: f64,
    /// Highest honest-tenant quarantine count across campaign phases
    /// minus the baseline's (clamped at zero) — nonzero would mean
    /// injected corruption leaked into the guard's residual evidence and
    /// convicted an honest curve point.
    honest_convictions_over_baseline: usize,
    /// Campaign accounting gap; the bin refuses to ship non-zero.
    requests_unaccounted: usize,
    /// 1-thread vs 8-thread campaign reports compared byte-for-byte.
    bit_identical_across_threads: bool,
    phases: Vec<PhaseStats>,
}

/// Deterministic value stream for operand buffers (splitmix64 bits mapped
/// into `[-1, 1)`), so the kernel campaign needs no RNG dependency.
fn unit_stream(seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 2));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

fn pick(seed: u64, len: usize) -> usize {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % len.max(1)
}

/// f64 ground-truth referee for an escaped flip: recomputes the column
/// perturbation `|Σ_i corrupt[i,j] − Σ_i golden[i,j]|` and the checker's
/// column limits in double precision, and rules the escape *bounded*
/// (harmless, inside the approximation contract) when every column sits
/// within twice its limit.
#[allow(clippy::too_many_arguments)]
fn escape_is_bounded(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    golden: &[f32],
    corrupt: &[f32],
    tol: &AbftTol,
) -> bool {
    let mut colsum_a = vec![0.0f64; k];
    let mut colmag_a = vec![0.0f64; k];
    for i in 0..m {
        for (kk, &v) in a[i * k..(i + 1) * k].iter().enumerate() {
            let v = f64::from(v);
            colsum_a[kk] += v;
            colmag_a[kk] += v * v;
        }
    }
    let mut limit = vec![tol.abs; n];
    let mut mag = vec![0.0f64; n];
    for kk in 0..k {
        let w = colsum_a[kk] * colsum_a[kk] + colmag_a[kk];
        for (j, &v) in b[kk * n..(kk + 1) * n].iter().enumerate() {
            let v = f64::from(v);
            mag[j] += w * v * v;
        }
    }
    for j in 0..n {
        limit[j] += tol.rel * mag[j].sqrt();
    }
    let mut delta = vec![0.0f64; n];
    for i in 0..m {
        for j in 0..n {
            delta[j] += f64::from(corrupt[i * n + j]) - f64::from(golden[i * n + j]);
        }
    }
    (0..n).all(|j| delta[j].abs() <= 2.0 * limit[j])
}

/// Injects `trials` flips per (target, bit ≥ 16) pair into a small GEMM
/// and counts checksum detections against the golden operands.
pub fn kernel_campaign(seed: u64, trials: usize) -> KernelStats {
    let (m, k, n) = (24, 40, 28);
    let tol = AbftTol::exact(m, k, n);
    let a = unit_stream(seed ^ 0xA0, m * k);
    let b = unit_stream(seed ^ 0xB0, k * n);
    let mut golden = vec![0.0f32; m * n];
    gemm_f32(m, k, n, &a, &b, &mut golden, &Epilogue::Raw);
    let clean_false_alarms = usize::from(verify_gemm_f32(m, k, n, &a, &b, &golden, &tol).is_err());

    let mut injected = 0usize;
    let mut detected = 0usize;
    let mut bounded_escapes = 0usize;
    let mut unbounded_escapes = 0usize;
    let mut c = vec![0.0f32; m * n];
    for trial in 0..trials {
        for (ti, target) in FlipTarget::ALL.into_iter().enumerate() {
            for bit in 16..32u32 {
                let fseed = seed ^ ((trial * 48 + ti * 16) as u64) ^ (u64::from(bit) << 40);
                injected += 1;
                let caught = match target {
                    // Operand flips land *after* checksum capture: the
                    // multiply runs over the corrupted panel while
                    // verification holds checksums of the golden one.
                    FlipTarget::WeightPanel => {
                        let mut bc = b.clone();
                        let idx = pick(fseed, bc.len());
                        flip_bit(&mut bc, idx, bit);
                        gemm_f32(m, k, n, &a, &bc, &mut c, &Epilogue::Raw);
                        verify_gemm_f32(m, k, n, &a, &b, &c, &tol).is_err()
                    }
                    FlipTarget::ActivationBuffer => {
                        let mut ac = a.clone();
                        let idx = pick(fseed, ac.len());
                        flip_bit(&mut ac, idx, bit);
                        gemm_f32(m, k, n, &ac, &b, &mut c, &Epilogue::Raw);
                        verify_gemm_f32(m, k, n, &a, &b, &c, &tol).is_err()
                    }
                    FlipTarget::Accumulator => {
                        c.copy_from_slice(&golden);
                        let idx = pick(fseed, c.len());
                        flip_bit(&mut c, idx, bit);
                        verify_gemm_f32(m, k, n, &a, &b, &c, &tol).is_err()
                    }
                };
                if caught {
                    detected += 1;
                } else if escape_is_bounded(m, k, n, &a, &b, &golden, &c, &tol) {
                    bounded_escapes += 1;
                } else {
                    unbounded_escapes += 1;
                }
            }
        }
    }
    let pct_of = |x: usize| {
        if injected > 0 {
            100.0 * x as f64 / injected as f64
        } else {
            100.0
        }
    };
    KernelStats {
        dims: format!("{m}x{k}x{n}"),
        injected,
        detected,
        bounded_escapes,
        unbounded_escapes,
        detection_pct: pct_of(detected),
        covered_pct: pct_of(detected + bounded_escapes),
        clean_false_alarms,
    }
}

/// Times the unprotected vs checksummed GEMM at `dim`³ (best of three)
/// and checks the protected output is bit-identical.
pub fn overhead_campaign(seed: u64, dim: usize) -> OverheadStats {
    let (m, k, n) = (dim, dim, dim);
    let a = unit_stream(seed ^ 0xA1, m * k);
    let b = unit_stream(seed ^ 0xB1, k * n);
    let tol = AbftTol::exact(m, k, n);
    let mut plain = vec![0.0f32; m * n];
    let mut abft = vec![0.0f32; m * n];
    let best = |f: &mut dyn FnMut()| {
        let mut best_s = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            f();
            best_s = best_s.min(t0.elapsed().as_secs_f64());
        }
        best_s
    };
    let plain_s = best(&mut || gemm_f32(m, k, n, &a, &b, &mut plain, &Epilogue::Raw));
    let abft_s = best(&mut || {
        let _ = gemm_f32_abft(m, k, n, &a, &b, &mut abft, &Epilogue::Raw, &tol);
    });
    OverheadStats {
        dim,
        plain_ms: 1e3 * plain_s,
        abft_ms: 1e3 * abft_s,
        overhead_pct: if plain_s > 0.0 {
            100.0 * (abft_s - plain_s) / plain_s
        } else {
            0.0
        },
        bit_identical: plain
            .iter()
            .zip(&abft)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
    }
}

fn phase_stats(
    phase: &str,
    flip_rate: f64,
    min_bit: u32,
    report: &FleetReport,
    wall_s: f64,
) -> PhaseStats {
    PhaseStats {
        phase: phase.to_string(),
        flip_rate,
        min_bit,
        arrivals: report.arrivals,
        admitted: report.admitted,
        on_time_pct: 100.0 * report.on_time_rate(),
        sdc_detected: report.sdc_detected,
        sdc_reexecuted: report.sdc_reexecuted,
        sdc_escaped: report.sdc_escaped,
        sdc_false_alarm: report.sdc_false_alarm,
        sdc_ejections: report.sdc_ejections,
        quarantined_points_liar: report
            .tenants
            .iter()
            .filter(|t| t.name == LIAR.name())
            .map(|t| t.quarantined_points)
            .sum(),
        quarantined_points_honest: report
            .tenants
            .iter()
            .filter(|t| t.name != LIAR.name())
            .map(|t| t.quarantined_points)
            .sum(),
        requests_unaccounted: report.requests_unaccounted,
        mean_latency_ms: 1e3 * report.mean_latency_s,
        wall_s,
        sim_rps: if wall_s > 0.0 {
            report.arrivals as f64 / wall_s
        } else {
            0.0
        },
    }
}

/// Builds the artifact: kernel coverage, ABFT overhead, and the fleet
/// flip-rate sweep. Exposed (sized-down) to the schema corpus test.
pub fn build_artifact(
    requests_target: usize,
    replicas: usize,
    seed: u64,
    trials: usize,
    abft_dim: usize,
) -> Artifact {
    let kernel = kernel_campaign(seed, trials);
    println!(
        "kernel: {}/{} flips detected ({}), {} bounded + {} material escapes \
         (coverage {}) over {} GEMM, clean false alarms {}",
        kernel.detected,
        kernel.injected,
        pct(kernel.detection_pct),
        kernel.bounded_escapes,
        kernel.unbounded_escapes,
        pct(kernel.covered_pct),
        kernel.dims,
        kernel.clean_false_alarms
    );
    let overhead = overhead_campaign(seed, abft_dim);
    println!(
        "abft overhead @ {}^3: plain {:.1}ms, abft {:.1}ms ({} overhead, outputs {})",
        overhead.dim,
        overhead.plain_ms,
        overhead.abft_ms,
        fx(1.0 + overhead.overhead_pct / 100.0),
        if overhead.bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let rate_scale = replicas as f64 / 8.0;
    let total_rate = 216.0 * rate_scale;
    let horizon_s = (requests_target as f64 / total_rate).max(1.0);
    let tenants = roster(horizon_s, rate_scale, seed);
    let execs = executors();
    let exec_refs: Vec<&dyn RequestExecutor> =
        execs.iter().map(|e| e as &dyn RequestExecutor).collect();
    let device = DisturbedDevice::tx2(Scenario::new(
        "steady",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        0,
    ));
    let floor = SdcParams::default().detect_bit_floor;
    // (name, rate, min_bit): baseline → two protected campaigns → a
    // stealth phase whose flips land below the modelled detection floor.
    let sweep: [(&str, f64, u32); 4] = [
        ("baseline", 0.0, floor),
        ("flips-2pct", 0.02, floor),
        ("flips-10pct", 0.10, floor),
        ("stealth-low-bits", 0.05, 8),
    ];
    let plan_for = |rate: f64, min_bit: u32| {
        if rate <= 0.0 {
            ChaosPlan::none()
        } else {
            ChaosPlan::none().with_bitflip_campaign(
                seed ^ 0x5DC,
                horizon_s,
                replicas,
                replicas.max(2),
                rate,
                min_bit,
            )
        }
    };
    let params_for = |chaos: &ChaosPlan| FleetParams {
        replicas,
        policy: RouterPolicy::PowerOfTwoChoices,
        serve: ServeParams {
            deadline_s: 0.25,
            queue_cap: 16,
            drain_fraction: 0.2,
            seed,
            ..ServeParams::default()
        },
        horizon_s,
        steal: true,
        route_seed: seed ^ 0xF1EE,
        chaos: chaos.clone(),
        ..FleetParams::default()
    };

    let mut table = Table::new(&[
        "phase", "rate", "arrivals", "on-time", "detect", "reexec", "escape", "eject", "quar",
        "sim-rps",
    ]);
    let mut phases = Vec::new();
    for (name, rate, min_bit) in sweep {
        let chaos = plan_for(rate, min_bit);
        let t0 = std::time::Instant::now();
        let report = run_fleet(&tenants, &exec_refs, &device, &params_for(&chaos));
        let wall_s = t0.elapsed().as_secs_f64();
        let stats = phase_stats(name, rate, min_bit, &report, wall_s);
        table.row(vec![
            stats.phase.clone(),
            format!("{:.0}%", 100.0 * rate),
            stats.arrivals.to_string(),
            pct(stats.on_time_pct),
            stats.sdc_detected.to_string(),
            stats.sdc_reexecuted.to_string(),
            stats.sdc_escaped.to_string(),
            stats.sdc_ejections.to_string(),
            format!(
                "{}+{}",
                stats.quarantined_points_liar, stats.quarantined_points_honest
            ),
            format!("{:.0}", stats.sim_rps),
        ]);
        phases.push(stats);
    }
    table.print();

    // Determinism self-check on the heaviest protected campaign.
    let chaos_again = plan_for(sweep[2].1, sweep[2].2);
    let bit_identical = bit_identical_across_threads(|| {
        run_fleet(&tenants, &exec_refs, &device, &params_for(&chaos_again)).to_json()
    });
    println!(
        "determinism: 1-thread vs 8-thread campaign reports {}",
        if bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // Fleet-level detection coverage over the phases whose flips all land
    // at or above the modelled floor (the stealth phase measures escapes).
    let (det, esc) = phases
        .iter()
        .filter(|p| p.flip_rate > 0.0 && p.min_bit >= floor)
        .fold((0usize, 0usize), |(d, e), p| {
            (d + p.sdc_detected, e + p.sdc_escaped)
        });
    let fleet_detection_pct = if det + esc > 0 {
        100.0 * det as f64 / (det + esc) as f64
    } else {
        100.0
    };
    let baseline_q = phases[0].quarantined_points_honest;
    let campaign_q_max = phases[1..]
        .iter()
        .map(|p| p.quarantined_points_honest)
        .max()
        .unwrap_or(0);
    Artifact {
        schema_version: RESULTS_SCHEMA_VERSION,
        bench: "fleet_sdc".to_string(),
        replicas,
        tenant_models: tenants.iter().map(|t| t.name.clone()).collect(),
        requests_target,
        seed,
        scenario: device.scenario().name().to_string(),
        horizon_s,
        kernel,
        overhead,
        fleet_detection_pct,
        availability_pct: phases[2].on_time_pct,
        availability_drop_pct: phases[0].on_time_pct - phases[2].on_time_pct,
        honest_convictions_over_baseline: campaign_q_max.saturating_sub(baseline_q),
        requests_unaccounted: phases.iter().map(|p| p.requests_unaccounted).sum(),
        bit_identical_across_threads: bit_identical,
        phases,
    }
}

/// Serialises an artifact for validation in tests.
pub fn artifact_value(artifact: &Artifact) -> serde::Value {
    serde_json::to_value(artifact)
}

/// Entry point of the `fleet_sdc` binary.
pub fn run() {
    let requests =
        crate::env::usize_var("AT_BENCH_REQUESTS", &["AT_FLEET_REQUESTS"], 1_200_000).max(1);
    let replicas = crate::env::usize_var("AT_BENCH_REPLICAS", &["AT_FLEET_REPLICAS"], 8).max(1);
    let seed = crate::env::u64_var("AT_BENCH_SEED", &["AT_FLEET_SEED"], 7);
    let trials = crate::env::usize_var("AT_BENCH_SDC_TRIALS", &[], 8).max(1);
    let abft_dim = crate::env::usize_var("AT_BENCH_ABFT_DIM", &[], 512).max(16);
    println!(
        "fleet_sdc: {replicas} replicas × 6 tenants, target {requests} requests, seed {seed}, \
         {trials} kernel trials, abft dim {abft_dim}"
    );
    let artifact = build_artifact(requests, replicas, seed, trials, abft_dim);
    assert!(
        artifact.kernel.covered_pct >= 99.0,
        "kernel fault coverage {:.2}% below the 99% bar",
        artifact.kernel.covered_pct
    );
    assert_eq!(
        artifact.kernel.unbounded_escapes, 0,
        "a flip escaped detection AND materially corrupted the output"
    );
    assert_eq!(
        artifact.kernel.clean_false_alarms, 0,
        "checksum verification tripped on a clean output"
    );
    assert!(
        artifact.overhead.bit_identical,
        "ABFT epilogue changed the protected output"
    );
    assert!(
        artifact.fleet_detection_pct >= 99.0,
        "fleet detection coverage {:.2}% below the 99% bar",
        artifact.fleet_detection_pct
    );
    assert_eq!(
        artifact.requests_unaccounted, 0,
        "an SDC phase lost requests silently — accounting regression"
    );
    assert_eq!(
        artifact.honest_convictions_over_baseline, 0,
        "injected corruption convicted an honest tenant's curve points"
    );
    assert!(
        artifact.bit_identical_across_threads,
        "SDC fleet report depends on thread count — determinism regression"
    );
    if artifact.overhead.dim >= 512 && artifact.overhead.overhead_pct > 10.0 {
        eprintln!(
            "WARNING: ABFT overhead {:.2}% exceeds the 10% bar at {}^3",
            artifact.overhead.overhead_pct, artifact.overhead.dim
        );
        std::process::exit(1);
    }
    println!(
        "sdc: kernel coverage {}, fleet coverage {}, abft overhead {}, availability {} \
         (drop {} vs baseline)",
        pct(artifact.kernel.covered_pct),
        pct(artifact.fleet_detection_pct),
        pct(artifact.overhead.overhead_pct),
        pct(artifact.availability_pct),
        pct(artifact.availability_drop_pct)
    );
    if !write_bench_json("sdc", &artifact) {
        std::process::exit(1);
    }
}
