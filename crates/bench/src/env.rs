//! Canonical bench sizing environment variables.
//!
//! Every bench binary sizes itself from the `AT_BENCH_*` family; the
//! pre-unification names (`AT_KERNELS_DIM`, `AT_FLEET_REQUESTS`, …) keep
//! working as aliases. Lookup order is canonical name first, then aliases
//! in declaration order; the first *set* variable wins even if it fails to
//! parse (a typo'd canonical value falls back to the default, never to a
//! stale alias).
//!
//! | Canonical            | Legacy alias        | Meaning                          |
//! |----------------------|---------------------|----------------------------------|
//! | `AT_BENCH_DIM`       | `AT_KERNELS_DIM`    | Largest kernel matmul dimension  |
//! | `AT_BENCH_REPS`      | `AT_KERNELS_REPS`   | Repetitions per measurement      |
//! | `AT_BENCH_REQUESTS`  | `AT_FLEET_REQUESTS` | Fleet total arrival target       |
//! | `AT_BENCH_REPLICAS`  | `AT_FLEET_REPLICAS` | Fleet replica count              |
//! | `AT_BENCH_SEED`      | `AT_FLEET_SEED`     | Fleet / chaos simulation seed    |

/// The first set variable among `canonical` and `aliases`, if any.
fn lookup(canonical: &str, aliases: &[&str]) -> Option<String> {
    std::iter::once(canonical)
        .chain(aliases.iter().copied())
        .find_map(|k| std::env::var(k).ok())
}

/// Reads a `usize` sizing variable: canonical name first, then aliases.
pub fn usize_var(canonical: &str, aliases: &[&str], default: usize) -> usize {
    lookup(canonical, aliases)
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` sizing variable (seeds), same lookup order.
pub fn u64_var(canonical: &str, aliases: &[&str], default: u64) -> u64 {
    lookup(canonical, aliases)
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Reads an `f64` sizing variable, same lookup order.
pub fn f64_var(canonical: &str, aliases: &[&str], default: f64) -> f64 {
    lookup(canonical, aliases)
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable names: the process environment is
    // shared across the parallel test runner.

    #[test]
    fn canonical_wins_over_alias() {
        std::env::set_var("AT_TEST_CANON_A", "7");
        std::env::set_var("AT_TEST_ALIAS_A", "9");
        assert_eq!(usize_var("AT_TEST_CANON_A", &["AT_TEST_ALIAS_A"], 1), 7);
        std::env::remove_var("AT_TEST_CANON_A");
        std::env::remove_var("AT_TEST_ALIAS_A");
    }

    #[test]
    fn alias_applies_when_canonical_is_unset() {
        std::env::set_var("AT_TEST_ALIAS_B", "42");
        assert_eq!(u64_var("AT_TEST_CANON_B", &["AT_TEST_ALIAS_B"], 1), 42);
        std::env::remove_var("AT_TEST_ALIAS_B");
    }

    #[test]
    fn unset_and_unparseable_fall_back_to_default() {
        assert_eq!(f64_var("AT_TEST_CANON_C", &["AT_TEST_ALIAS_C"], 2.5), 2.5);
        std::env::set_var("AT_TEST_CANON_D", "not-a-number");
        std::env::set_var("AT_TEST_ALIAS_D", "3");
        // A set-but-broken canonical value must not fall through to the
        // alias: the canonical variable was the user's intent.
        assert_eq!(usize_var("AT_TEST_CANON_D", &["AT_TEST_ALIAS_D"], 5), 5);
        std::env::remove_var("AT_TEST_CANON_D");
        std::env::remove_var("AT_TEST_ALIAS_D");
    }
}
