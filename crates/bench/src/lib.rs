//! # at-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§7); see
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results. Shared setup (model + dataset + profile
//! construction, with on-disk profile caching) lives in [`harness`];
//! result formatting in [`report`].

pub mod bench_kernels;
pub mod env;
pub mod fleet_chaos;
pub mod fleet_sdc;
pub mod harness;
pub mod qos_guard;
pub mod report;
pub mod runtime_adapt;
pub mod serve_fleet;
pub mod serve_storm;
pub mod tune_faults;
