//! Overload-resilient serving under an adversarial storm — the body of the
//! `serve_storm` binary.
//!
//! Tunes a tradeoff curve for the selected benchmark, then drives the
//! `at_core::serve` discrete-event serving loop through three arrival
//! patterns against the simulated TX2: a steady control run, a bursty
//! duty-cycle, and the adversarial storm — a 5× traffic spike with a rail
//! brownout (plus sensor dropout) scripted across the same window and a
//! scripted executor-fault burst that trips the circuit breaker. Every run
//! is seeded and deterministic; all reports land in
//! `results/serve_storm.json`.
//!
//! Environment: `AT_BENCH` selects the benchmark (`resnet18` default,
//! `alexnet`, `alexnet2`), `AT_SERVE_RPS` the background arrival rate as a
//! fraction of service capacity (default 0.5), `AT_SERVE_HORIZON` the
//! simulated horizon in multiples of 100 baseline service times (default
//! 4), plus the usual harness sizing variables (`AT_SAMPLES`, `AT_ITERS`,
//! …).

use crate::harness::{Prepared, Sizing};
use crate::report::{pct, Table};
use at_core::predict::PredictionModel;
use at_core::serve::{
    generate_arrivals, serve, ScriptedFaultExecutor, ServeParams, ServeReport, TrafficPattern,
};
use at_core::TradeoffCurve;
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};
use at_models::BenchmarkId;

/// The whole artifact written to `results/serve_storm.json`.
#[derive(serde::Serialize)]
struct Artifact {
    schema_version: u32,
    benchmark: String,
    baseline_time_s: f64,
    baseline_qos: f64,
    curve_points: usize,
    curve_max_speedup: f64,
    runs: Vec<ServeReport>,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One serving run, returning the report and printing a summary row.
#[allow(clippy::too_many_arguments)]
fn run_case(
    table: &mut Table,
    label: &str,
    curve: &TradeoffCurve,
    base_time: f64,
    device: &DisturbedDevice,
    pattern: &TrafficPattern,
    horizon_s: f64,
    fault_windows: Vec<(usize, usize)>,
    params: &ServeParams,
) -> ServeReport {
    let trace = generate_arrivals(pattern, horizon_s, 0x5709 ^ label.len() as u64);
    let exec = ScriptedFaultExecutor {
        windows: fault_windows,
    };
    let report = serve(curve, base_time, device, &trace, &exec, params);
    table.row(vec![
        label.to_string(),
        report.pattern.clone(),
        format!("{}", report.arrivals),
        format!("{}", report.admitted),
        pct(100.0 * report.deadline_hit_rate()),
        format!("{}", report.served_late),
        format!("{}", report.faulted),
        format!(
            "{}/{}/{}",
            report.shed_queue_full, report.shed_deadline, report.shed_breaker
        ),
        format!("{}", report.breaker_trips),
        format!("{}/{}", report.escalations, report.deescalations),
        format!("{:.3}s", report.p99_latency_s),
        format!("{:.2}", report.mean_qos),
    ]);
    report
}

/// Runs the whole experiment: tune a curve, serve the three arrival
/// patterns, print the summary table and write the JSON artifact.
pub fn run() {
    let sizing = Sizing::from_env();
    let id = match std::env::var("AT_BENCH").as_deref() {
        Ok("alexnet") => BenchmarkId::AlexNetImageNet,
        Ok("alexnet2") => BenchmarkId::AlexNet2,
        _ => BenchmarkId::ResNet18,
    };

    eprintln!("[serve_storm] preparing {} …", id.name());
    let p = Prepared::new(id, sizing);
    let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    let params = p.params(3.0, PredictionModel::Pi1, sizing);
    let dev_result = p.tune(&profiles, &params);
    let curve = dev_result.curve.clone();
    let baseline_qos = p.baseline_cal_accuracy();

    let device = at_core::install::EdgeDevice::tx2();
    let perf = at_core::perf::PerfModel::new(&p.bench.graph, &p.registry, p.cal.batches[0].shape())
        .expect("perf model");
    let baseline_cfg = at_core::Config::baseline(&p.bench.graph);
    let base_time = perf.device_time(&baseline_cfg, &device.timing, &device.promise);
    let max_speedup = curve.points().iter().map(|q| q.perf).fold(1.0, f64::max);
    eprintln!(
        "[serve_storm] curve: {} points, max speedup {max_speedup:.2}x, baseline {base_time:.4}s",
        curve.len()
    );

    // Rates are expressed relative to baseline service capacity so the
    // experiment is meaningful whatever the benchmark's absolute speed.
    let capacity_rps = 1.0 / base_time.max(1e-9);
    let base_rps = env_f64("AT_SERVE_RPS", 0.5) * capacity_rps;
    let horizon_s = env_f64("AT_SERVE_HORIZON", 4.0) * 100.0 * base_time;
    // All control timescales are multiples of the service time, so the
    // experiment behaves identically whether the benchmark serves in
    // microseconds or seconds.
    let serve_params = ServeParams {
        deadline_s: 15.0 * base_time,
        cooldown_s: 25.0 * base_time,
        baseline_qos,
        ..ServeParams::default()
    };

    let mut table = Table::new(&[
        "Case",
        "Pattern",
        "Arrivals",
        "Admitted",
        "On-time",
        "Late",
        "Faulted",
        "Shed q/d/b",
        "Trips",
        "Esc/De",
        "p99",
        "QoS",
    ]);
    let mut runs: Vec<ServeReport> = Vec::new();

    // Control: steady background load, quiet device.
    let quiet = DisturbedDevice::tx2(Scenario::new(
        "quiet",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        1,
    ));
    runs.push(run_case(
        &mut table,
        "steady",
        &curve,
        base_time,
        &quiet,
        &TrafficPattern::Steady { rate_rps: base_rps },
        horizon_s,
        vec![],
        &serve_params,
    ));

    // Bursty duty-cycle at 3× background.
    runs.push(run_case(
        &mut table,
        "bursty",
        &curve,
        base_time,
        &quiet,
        &TrafficPattern::Bursty {
            base_rps,
            burst_rps: 3.0 * base_rps,
            period_s: horizon_s / 6.0,
            duty: 0.4,
        },
        horizon_s,
        vec![],
        &serve_params,
    ));

    // The storm: a 5× traffic spike over the middle of the horizon, a rail
    // brownout + sensor dropout scripted across the same window (mapped to
    // execution indices via the background rate), and a scripted
    // executor-fault burst inside the storm that trips the breaker.
    let spike_at = 0.4 * horizon_s;
    let spike_len = 0.25 * horizon_s;
    let exec_at = (base_rps * spike_at) as usize;
    let exec_len = (5.0 * base_rps * spike_len) as usize;
    let storm_device = DisturbedDevice::tx2(
        Scenario::brownout_storm(usize::MAX / 2, exec_at, exec_len, 0.6, 23)
            .with_invocations(usize::MAX / 2),
    );
    runs.push(run_case(
        &mut table,
        "storm",
        &curve,
        base_time,
        &storm_device,
        &TrafficPattern::Spike {
            base_rps,
            spike_rps: 5.0 * base_rps,
            at_s: spike_at,
            len_s: spike_len,
        },
        horizon_s,
        vec![(exec_at + 20, 5)],
        &serve_params,
    ));

    println!("\nOverload-resilient serving — admission, ladder, breaker\n");
    table.print();

    let storm = &runs[2];
    println!(
        "\nstorm: {} of {} admitted met the deadline ({}), breaker tripped {} time(s), final state {:?}",
        storm.served_on_time,
        storm.admitted,
        pct(100.0 * storm.deadline_hit_rate()),
        storm.breaker_trips,
        storm.final_breaker,
    );

    crate::report::write_json_compact(
        "serve_storm",
        &Artifact {
            schema_version: crate::report::RESULTS_SCHEMA_VERSION,
            benchmark: id.name().to_string(),
            baseline_time_s: base_time,
            baseline_qos,
            curve_points: curve.len(),
            curve_max_speedup: max_speedup,
            runs,
        },
    );
}
