//! Trust-but-verify QoS guard under curve miscalibration — the body of the
//! `qos_guard` binary.
//!
//! Tunes a tradeoff curve for the selected benchmark, ships its promises
//! unchanged, then deploys it on a device where the aggressive (fast) half
//! of the curve delivers *more* QoS loss than the dev-time calibration
//! measured: for each severity `s` in the sweep a
//! [`MiscalibratedExecutor`] delivers `s×` the promised loss (at least two
//! QoS points per severity unit, so the sweep is meaningful however tight
//! the tuned curve is). A guarded serving run under sustained overload
//! must canary the drift, quarantine every miscalibrated point, repair its
//! promise to the observed estimate, and never plan below the QoS floor —
//! severity 1.0 is the honest control and must convict nothing. A final
//! forced case degrades *every* point far below the floor, driving the
//! exact-fallback safety net. All runs are seeded and deterministic;
//! reports land in `results/qos_guard.json`.
//!
//! Environment: `AT_BENCH` selects the benchmark, `AT_GUARD_SEVERITIES`
//! the sweep (comma-separated, default `1.0,1.5,2.0,3.0`),
//! `AT_GUARD_CANARY` the canary fraction (default 0.25), plus the usual
//! harness sizing variables (`AT_SAMPLES`, `AT_ITERS`, …).

use crate::harness::{Prepared, Sizing};
use crate::report::{pct, Table};
use at_core::guard::{GuardParams, MiscalibratedExecutor};
use at_core::predict::PredictionModel;
use at_core::serve::{
    generate_arrivals, serve_guarded, GuardedServeReport, ServeParams, TrafficPattern,
};
use at_core::TradeoffCurve;
use at_hw::{DisturbedDevice, FrequencyLadder, Scenario};
use at_models::BenchmarkId;

/// One severity's summary row in the artifact.
#[derive(serde::Serialize)]
struct SeverityRow {
    severity: f64,
    lying_points: usize,
    quarantined: usize,
    canaries: usize,
    misses: usize,
    floor_breaches: usize,
    exact_fallback: bool,
    /// Worst absolute error of the repaired promises against the honest
    /// QoS, over the quarantined points (0 when nothing was convicted).
    max_repair_error: f64,
}

/// The whole artifact written to `results/qos_guard.json`.
#[derive(serde::Serialize)]
struct Artifact {
    schema_version: u32,
    benchmark: String,
    baseline_time_s: f64,
    baseline_qos: f64,
    curve_points: usize,
    qos_floor: f64,
    canary_fraction: f64,
    sweep: Vec<SeverityRow>,
    runs: Vec<GuardedServeReport>,
    forced_fallback: GuardedServeReport,
}

fn severities_from_env() -> Vec<f64> {
    std::env::var("AT_GUARD_SEVERITIES")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![1.0, 1.5, 2.0, 3.0])
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The aggressive half of the curve: the faster points, whose promises the
/// sweep miscalibrates.
fn aggressive_indices(curve: &TradeoffCurve) -> Vec<usize> {
    let n = curve.len();
    (n / 2..n).collect()
}

/// What each rung truly delivers at miscalibration `severity`: the
/// aggressive rungs lose `(severity - 1)` extra units of their promised
/// loss — floored at two QoS points per unit, so even a near-lossless
/// tuned curve drifts measurably — while the conservative rungs stay
/// honest. Severity 1.0 is the honest control.
fn delivered_qos(shipped: &TradeoffCurve, baseline_qos: f64, severity: f64) -> Vec<f64> {
    let aggressive = aggressive_indices(shipped);
    shipped
        .points()
        .iter()
        .enumerate()
        .map(|(i, pt)| {
            if aggressive.contains(&i) {
                let promised_loss = baseline_qos - pt.qos;
                pt.qos - (severity - 1.0) * promised_loss.max(2.0)
            } else {
                pt.qos
            }
        })
        .collect()
}

/// Runs the whole experiment: tune a curve, sweep promise-inflation
/// severities through guarded overload serving, force the exact fallback,
/// print the summary table and write the JSON artifact.
pub fn run() {
    let sizing = Sizing::from_env();
    let id = match std::env::var("AT_BENCH").as_deref() {
        Ok("alexnet") => BenchmarkId::AlexNetImageNet,
        Ok("alexnet2") => BenchmarkId::AlexNet2,
        _ => BenchmarkId::ResNet18,
    };

    eprintln!("[qos_guard] preparing {} …", id.name());
    let p = Prepared::new(id, sizing);
    let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    let params = p.params(3.0, PredictionModel::Pi1, sizing);
    let dev_result = p.tune(&profiles, &params);
    let honest_curve = dev_result.curve.clone();
    let baseline_qos = p.baseline_cal_accuracy();

    let device = at_core::install::EdgeDevice::tx2();
    let perf = at_core::perf::PerfModel::new(&p.bench.graph, &p.registry, p.cal.batches[0].shape())
        .expect("perf model");
    let baseline_cfg = at_core::Config::baseline(&p.bench.graph);
    let base_time = perf.device_time(&baseline_cfg, &device.timing, &device.promise);
    eprintln!(
        "[qos_guard] curve: {} points, baseline {base_time:.4}s, baseline QoS {baseline_qos:.2}",
        honest_curve.len()
    );

    // The per-rung QoS the shipped curve promises.
    let promised_qos: Vec<f64> = honest_curve.points().iter().map(|q| q.qos).collect();
    let worst_promised = promised_qos.iter().copied().fold(baseline_qos, f64::min);

    // Sustained 2× overload keeps the ladder on the aggressive rungs so
    // canaries reach every lie; all control timescales scale with the
    // service time.
    let capacity_rps = 1.0 / base_time.max(1e-9);
    let horizon_s = 600.0 * base_time;
    let trace = generate_arrivals(
        &TrafficPattern::Steady {
            rate_rps: 2.0 * capacity_rps,
        },
        horizon_s,
        0x6A4D,
    );
    let quiet = DisturbedDevice::tx2(Scenario::new(
        "quiet",
        FrequencyLadder::tx2_gpu(),
        usize::MAX / 2,
        1,
    ));
    // A tight deadline: with the queue saturated by the 2× overload the
    // ladder's required speedup exceeds the curve's top, so it clamps to
    // the fastest surviving rung — exactly the aggressive half under test,
    // cascading down as convictions land.
    let serve_params = ServeParams {
        deadline_s: 5.0 * base_time,
        cooldown_s: 25.0 * base_time,
        baseline_qos,
        ..ServeParams::default()
    };
    // Floor with headroom below the worst *promised* rung: the sweep's
    // breaches come from delivered drift, never from honest points
    // straddling the floor.
    let qos_floor = worst_promised - 5.0;
    let canary_fraction = env_f64("AT_GUARD_CANARY", 0.25);
    let guard_params = GuardParams {
        canary_fraction,
        canary_seed: 0xCA9A,
        tolerance: 1.0,
        strikes_to_quarantine: 3,
        qos_floor,
        ..GuardParams::default()
    };
    let mut table = Table::new(&[
        "Severity",
        "Lying",
        "Quarantined",
        "Canaries",
        "Misses",
        "Breaches",
        "Fallback",
        "RepairErr",
        "On-time",
    ]);
    let mut sweep: Vec<SeverityRow> = Vec::new();
    let mut runs: Vec<GuardedServeReport> = Vec::new();

    for severity in severities_from_env() {
        let delivered = delivered_qos(&honest_curve, baseline_qos, severity);
        let lying_points = if severity > 1.0 {
            aggressive_indices(&honest_curve).len()
        } else {
            0
        };
        let exec = MiscalibratedExecutor {
            honest_qos: delivered.clone(),
            jitter: 0.2,
            seed: 0xB0B,
        };
        let r = serve_guarded(
            &honest_curve,
            base_time,
            &quiet,
            &trace,
            &exec,
            &serve_params,
            &guard_params,
        );
        let max_repair_error = r
            .guard
            .quarantined
            .iter()
            .map(|&i| (r.guard.repaired_curve.points()[i].qos - delivered[i]).abs())
            .fold(0.0, f64::max);
        table.row(vec![
            format!("{severity:.2}x"),
            format!("{lying_points}"),
            format!("{}", r.guard.quarantined.len()),
            format!("{}", r.guard.canaries),
            format!("{}", r.guard.misses),
            format!("{}", r.guard.floor_breaches),
            format!("{}", r.guard.exact_fallback),
            format!("{max_repair_error:.3}"),
            pct(100.0 * r.serve.deadline_hit_rate()),
        ]);
        sweep.push(SeverityRow {
            severity,
            lying_points,
            quarantined: r.guard.quarantined.len(),
            canaries: r.guard.canaries,
            misses: r.guard.misses,
            floor_breaches: r.guard.floor_breaches,
            exact_fallback: r.guard.exact_fallback,
            max_repair_error,
        });
        runs.push(r);
    }

    // Forced fallback: every rung truly delivers far below a floor set
    // directly under the baseline, while the promises still claim honesty —
    // quarantine must exhaust the curve and clamp to exact.
    let forced_exec = MiscalibratedExecutor {
        honest_qos: promised_qos.iter().map(|_| qos_floor - 10.0).collect(),
        jitter: 0.2,
        seed: 0xB0B,
    };
    let forced = serve_guarded(
        &honest_curve,
        base_time,
        &quiet,
        &trace,
        &forced_exec,
        &serve_params,
        &guard_params,
    );
    println!("\nTrust-but-verify QoS guard — curve miscalibration sweep\n");
    table.print();
    println!(
        "\nforced fallback: {} of {} points quarantined, exact_fallback={}, floor {qos_floor:.2}",
        forced.guard.quarantined.len() + forced.guard.premasked_below_floor.len(),
        honest_curve.len(),
        forced.guard.exact_fallback,
    );

    crate::report::write_json_compact(
        "qos_guard",
        &Artifact {
            schema_version: crate::report::RESULTS_SCHEMA_VERSION,
            benchmark: id.name().to_string(),
            baseline_time_s: base_time,
            baseline_qos,
            curve_points: honest_curve.len(),
            qos_floor,
            canary_fraction,
            sweep,
            runs,
            forced_fallback: forced,
        },
    );
}
