//! Fleet-scale multi-tenant load test — the body of the `serve_fleet`
//! binary and the writer of the repo's first `BENCH_serve.json`.
//!
//! Builds a simulated fleet of N replicas serving M tenant models from the
//! `at-models` zoo — each tenant with its own synthesized tradeoff curve
//! (anchored to the paper's Table 1 accuracy and layer counts), QoS floor,
//! cost anchor and traffic profile — and drives millions of simulated
//! requests through every router policy (round-robin, join-shortest-queue,
//! QoS-aware power-of-two-choices) under a mid-run brownout storm. One
//! tenant's curve deliberately lies, so the per-replica guard machinery
//! (canaries → quarantine → exact fallback) is inside the measured path.
//!
//! The headline number is the *harness's own* sustained simulated-requests
//! per second: AdaPT and TFApprox both observe that emulation throughput is
//! the limiting factor for this class of system, so the fleet simulator's
//! throughput is tracked as a first-class benchmark. Simulated results are
//! a pure function of the seed; wall-clock timings live in separate fields
//! that carry no behavioural meaning. A built-in self-check re-runs one
//! policy under 1-thread and 8-thread rayon pools and asserts bit-identical
//! reports.
//!
//! Environment: `AT_BENCH_REQUESTS` (total arrival target, default
//! 1,200,000), `AT_BENCH_REPLICAS` (default 8), `AT_BENCH_SEED` (default
//! 7) — the legacy `AT_FLEET_*` names still work as aliases (see
//! [`crate::env`]).

use crate::report::{pct, write_bench_json, Table, RESULTS_SCHEMA_VERSION};
use at_core::config::Config;
use at_core::fleet::{run_fleet, FleetParams, FleetReport, RouterPolicy, TenantSpec};
use at_core::guard::{GuardParams, MiscalibratedExecutor};
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::serve::{RequestExecutor, ServeParams, TrafficPattern};
use at_hw::{DisturbedDevice, Scenario};
use at_models::BenchmarkId;

/// Per-tenant slice of the benchmark artifact.
#[derive(serde::Serialize)]
pub struct TenantStats {
    name: String,
    arrivals: usize,
    on_time_pct: f64,
    shed_pct: f64,
    /// Canaried requests observed below the tenant's QoS floor.
    floor_breaches: usize,
    /// Requests planned below the floor (must stay 0 while guards work).
    planned_floor_breaches: usize,
    quarantined_points: usize,
    exact_fallback_replicas: usize,
    mean_qos: f64,
}

/// Per-policy slice of the benchmark artifact.
#[derive(serde::Serialize)]
pub struct PolicyStats {
    policy: String,
    arrivals: usize,
    admitted: usize,
    on_time_pct: f64,
    shed_pct: f64,
    breaker_trips: usize,
    steal_events: usize,
    mean_latency_ms: f64,
    p99_latency_ms: f64,
    /// Wall-clock seconds the simulation took (not simulated time).
    wall_s: f64,
    /// Simulated arrivals processed per wall-clock second.
    sim_rps: f64,
    tenants: Vec<TenantStats>,
}

/// The whole `BENCH_serve.json` artifact.
#[derive(serde::Serialize)]
pub struct Artifact {
    schema_version: u32,
    bench: String,
    replicas: usize,
    tenant_models: Vec<String>,
    requests_target: usize,
    seed: u64,
    scenario: String,
    horizon_s: f64,
    /// Peak per-policy simulated-requests/sec — the headline number.
    sustained_sim_rps: f64,
    /// 1-thread vs 8-thread rayon reports compared byte-for-byte.
    bit_identical_across_threads: bool,
    policies: Vec<PolicyStats>,
}

/// Synthesizes a tenant curve from zoo metadata: speedup rungs grow
/// linearly, promised QoS drops grow with depth, both seeded by the
/// model's layer count so every tenant's curve differs deterministically.
fn zoo_curve(id: BenchmarkId, lie: f64) -> TradeoffCurve {
    let acc = id.paper_baseline_accuracy();
    let rungs = 4 + id.paper_layers() % 4;
    TradeoffCurve::from_points(
        (0..rungs)
            .map(|i| TradeoffPoint {
                // A lying curve promises `lie` more QoS than the honest
                // executor will deliver (0.0 for honest tenants).
                qos: acc - (0.4 + 0.5 * i as f64) + lie,
                perf: 1.2 + 0.22 * i as f64,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

/// The honest QoS each rung of a tenant actually delivers.
fn honest_qos(id: BenchmarkId) -> Vec<f64> {
    let acc = id.paper_baseline_accuracy();
    let rungs = 4 + id.paper_layers() % 4;
    (0..rungs).map(|i| acc - (0.4 + 0.5 * i as f64)).collect()
}

/// The fleet's tenant roster: six zoo models with mixed traffic profiles.
/// `Vgg16Cifar10` ships a curve that over-promises by 2.5 QoS points on
/// every rung, while its executor under-delivers a further 1.5 (a 4-point
/// total lie, dipping below the tenant's floor on deep rungs) — the guard
/// must convict it per replica without touching the other five tenants.
pub(crate) const LIAR: BenchmarkId = BenchmarkId::Vgg16Cifar10;
const LIE_MARGIN: f64 = 2.5;

pub(crate) fn roster(horizon_s: f64, rate_scale: f64, seed: u64) -> Vec<TenantSpec> {
    let models = [
        BenchmarkId::LeNet,
        BenchmarkId::AlexNetCifar10,
        BenchmarkId::AlexNet2,
        BenchmarkId::ResNet18,
        LIAR,
        BenchmarkId::MobileNet,
    ];
    models
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let pattern = match i {
                0 => TrafficPattern::Steady {
                    rate_rps: 60.0 * rate_scale,
                },
                1 => TrafficPattern::Bursty {
                    base_rps: 30.0 * rate_scale,
                    burst_rps: 90.0 * rate_scale,
                    period_s: horizon_s / 10.0,
                    duty: 0.25,
                },
                2 => TrafficPattern::Diurnal {
                    min_rps: 10.0 * rate_scale,
                    max_rps: 50.0 * rate_scale,
                    period_s: horizon_s / 4.0,
                },
                3 => TrafficPattern::Steady {
                    rate_rps: 25.0 * rate_scale,
                },
                4 => TrafficPattern::Bursty {
                    base_rps: 20.0 * rate_scale,
                    burst_rps: 60.0 * rate_scale,
                    period_s: horizon_s / 8.0,
                    duty: 0.3,
                },
                _ => TrafficPattern::Spike {
                    base_rps: 20.0 * rate_scale,
                    spike_rps: 200.0 * rate_scale,
                    at_s: 0.3 * horizon_s,
                    len_s: 0.02 * horizon_s,
                },
            };
            let lie = if id == LIAR { LIE_MARGIN } else { 0.0 };
            TenantSpec {
                name: id.name().to_string(),
                curve: zoo_curve(id, lie),
                baseline_time_s: id.nominal_service_time_s(),
                baseline_qos: id.paper_baseline_accuracy(),
                pattern,
                arrival_seed: seed ^ ((i as u64 + 1) << 32),
                guard: GuardParams {
                    qos_floor: id.paper_baseline_accuracy() - 4.0,
                    canary_fraction: 0.1,
                    ..GuardParams::default()
                },
            }
        })
        .collect()
}

pub(crate) fn executors() -> Vec<MiscalibratedExecutor> {
    let models = [
        BenchmarkId::LeNet,
        BenchmarkId::AlexNetCifar10,
        BenchmarkId::AlexNet2,
        BenchmarkId::ResNet18,
        LIAR,
        BenchmarkId::MobileNet,
    ];
    models
        .iter()
        .enumerate()
        .map(|(i, &id)| MiscalibratedExecutor {
            honest_qos: honest_qos(id)
                .into_iter()
                .map(|q| if id == LIAR { q - 1.5 } else { q })
                .collect(),
            jitter: 0.3,
            seed: 0xF1EE7 ^ (i as u64),
        })
        .collect()
}

fn policy_stats(report: &FleetReport, wall_s: f64) -> PolicyStats {
    PolicyStats {
        policy: report.policy.clone(),
        arrivals: report.arrivals,
        admitted: report.admitted,
        on_time_pct: 100.0 * report.on_time_rate(),
        shed_pct: 100.0 * report.shed_rate(),
        breaker_trips: report.breaker_trips,
        steal_events: report.steal_events,
        mean_latency_ms: 1e3 * report.mean_latency_s,
        p99_latency_ms: 1e3 * report.p99_latency_s,
        wall_s,
        sim_rps: if wall_s > 0.0 {
            report.arrivals as f64 / wall_s
        } else {
            0.0
        },
        tenants: report
            .tenants
            .iter()
            .map(|t| TenantStats {
                name: t.name.clone(),
                arrivals: t.arrivals,
                on_time_pct: 100.0 * t.on_time_rate(),
                shed_pct: 100.0 * t.shed_rate(),
                floor_breaches: t.observed_floor_breaches,
                planned_floor_breaches: t.planned_floor_breaches,
                quarantined_points: t.quarantined_points,
                exact_fallback_replicas: t.exact_fallback_replicas,
                mean_qos: t.mean_qos,
            })
            .collect(),
    }
}

/// Builds the artifact by running every policy over the same roster and
/// disturbance timeline. Exposed (crate-internally sized-down) to the
/// schema corpus test.
pub fn build_artifact(requests_target: usize, replicas: usize, seed: u64) -> Artifact {
    // Nominal per-second offered load at 8 replicas is ~216 rps; rates
    // scale with the replica count so per-replica pressure stays constant
    // and the horizon stretches to hit the request target.
    let rate_scale = replicas as f64 / 8.0;
    let total_rate = 216.0 * rate_scale;
    let horizon_s = (requests_target as f64 / total_rate).max(1.0);
    let tenants = roster(horizon_s, rate_scale, seed);
    let execs = executors();
    let exec_refs: Vec<&dyn RequestExecutor> =
        execs.iter().map(|e| e as &dyn RequestExecutor).collect();
    // A rail brownout (with sensor dropout) mid-run, scripted by each
    // replica's execution index.
    let per_replica = requests_target / replicas.max(1);
    let device = DisturbedDevice::tx2(
        Scenario::brownout_storm(
            usize::MAX / 2,
            per_replica * 2 / 5,
            per_replica / 10,
            0.6,
            seed ^ 0xB10,
        )
        .with_invocations(usize::MAX / 2),
    );
    let params_for = |policy| FleetParams {
        replicas,
        policy,
        serve: ServeParams {
            deadline_s: 0.25,
            queue_cap: 16,
            // Tight drain budget: moderate backlog already demands >1x
            // speedup, so approximate rungs (and the guard's canary path)
            // stay inside the measured loop.
            drain_fraction: 0.2,
            seed,
            ..ServeParams::default()
        },
        horizon_s,
        steal: true,
        route_seed: seed ^ 0xF1EE,
        ..FleetParams::default()
    };

    let mut table = Table::new(&[
        "policy", "arrivals", "on-time", "shed", "trips", "steals", "wall", "sim-rps",
    ]);
    let mut policies = Vec::new();
    let mut sustained = 0.0f64;
    for policy in RouterPolicy::ALL {
        let t0 = std::time::Instant::now();
        let report = run_fleet(&tenants, &exec_refs, &device, &params_for(policy));
        let wall_s = t0.elapsed().as_secs_f64();
        let stats = policy_stats(&report, wall_s);
        sustained = sustained.max(stats.sim_rps);
        table.row(vec![
            stats.policy.clone(),
            stats.arrivals.to_string(),
            pct(stats.on_time_pct),
            pct(stats.shed_pct),
            stats.breaker_trips.to_string(),
            stats.steal_events.to_string(),
            format!("{:.2}s", stats.wall_s),
            format!("{:.0}", stats.sim_rps),
        ]);
        policies.push(stats);
    }
    table.print();

    // Determinism self-check: the same seed must produce a byte-identical
    // report whether rayon runs 1 or 8 threads.
    let bit_identical = crate::report::bit_identical_across_threads(|| {
        run_fleet(
            &tenants,
            &exec_refs,
            &device,
            &params_for(RouterPolicy::PowerOfTwoChoices),
        )
        .to_json()
    });
    println!(
        "determinism: 1-thread vs 8-thread reports {}",
        if bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    Artifact {
        schema_version: RESULTS_SCHEMA_VERSION,
        bench: "serve_fleet".to_string(),
        replicas,
        tenant_models: tenants.iter().map(|t| t.name.clone()).collect(),
        requests_target,
        seed,
        scenario: device.scenario().name().to_string(),
        horizon_s,
        sustained_sim_rps: sustained,
        bit_identical_across_threads: bit_identical,
        policies,
    }
}

/// Serialises an artifact for validation in tests.
pub fn artifact_value(artifact: &Artifact) -> serde::Value {
    serde_json::to_value(artifact)
}

/// Entry point of the `serve_fleet` binary.
pub fn run() {
    let requests =
        crate::env::usize_var("AT_BENCH_REQUESTS", &["AT_FLEET_REQUESTS"], 1_200_000).max(1);
    let replicas = crate::env::usize_var("AT_BENCH_REPLICAS", &["AT_FLEET_REPLICAS"], 8).max(1);
    let seed = crate::env::u64_var("AT_BENCH_SEED", &["AT_FLEET_SEED"], 7);
    println!(
        "serve_fleet: {replicas} replicas × 6 tenants, target {requests} requests, seed {seed}"
    );
    let artifact = build_artifact(requests, replicas, seed);
    assert!(
        artifact.bit_identical_across_threads,
        "fleet report depends on thread count — determinism regression"
    );
    println!(
        "sustained simulated-requests/sec: {:.0}",
        artifact.sustained_sim_rps
    );
    if !write_bench_json("serve", &artifact) {
        std::process::exit(1);
    }
}
