//! Figure 6: runtime approximation tuning under GPU frequency scaling.
//!
//! For ResNet-18, AlexNet-ImageNet and AlexNet2 the GPU frequency is swept
//! down the 12-step ladder. Without dynamic approximation the normalized
//! batch time grows like the slowdown; with the runtime tuner (control
//! policy 2, sliding window of one batch) the time stays near 1.0 while
//! inference accuracy degrades gracefully.

use at_bench::harness::{Prepared, Sizing};
use at_bench::report::Table;
use at_core::install::EdgeDevice;
use at_core::perf::PerfModel;
use at_core::predict::PredictionModel;
use at_core::profile::measure_config;
use at_core::qos::QosMetric;
use at_core::runtime::{Policy, RuntimeTuner};
use at_hw::FrequencyLadder;
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    let ladder = FrequencyLadder::tx2_gpu();
    let policy = match std::env::var("AT_POLICY").as_deref() {
        Ok("1") => Policy::EnforceEachInvocation,
        _ => Policy::AverageOverTime,
    };
    let batches_per_freq = 20usize;
    let mut json = Vec::new();

    for id in [
        BenchmarkId::ResNet18,
        BenchmarkId::AlexNetImageNet,
        BenchmarkId::AlexNet2,
    ] {
        eprintln!("[fig6] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
        let params = p.params(3.0, PredictionModel::Pi1, sizing);
        let dev_result = p.tune(&profiles, &params);
        // Install-time: replace predicted perf with device-measured speedup.
        let reference = p.cal_reference();
        let curve = at_core::install::refine_software_only(
            &p.bench.graph,
            &p.registry,
            &device,
            at_core::install::InstallObjective::Speedup,
            &dev_result.curve,
            &p.cal.batches,
            QosMetric::Accuracy,
            &reference,
            params.qos_min,
            p.cal.batches[0].shape(),
            0,
        )
        .expect("refinement succeeds");
        if curve.is_empty() {
            eprintln!("[fig6] {}: empty curve, skipping", id.name());
            continue;
        }
        // Pre-measure the test accuracy of every curve point once.
        let test_ref = p.test_reference();
        let accuracies: Vec<f64> = curve
            .points()
            .iter()
            .map(|pt| {
                measure_config(
                    &p.bench.graph,
                    &p.registry,
                    &pt.config,
                    &p.test.batches,
                    QosMetric::Accuracy,
                    &test_ref,
                    0,
                )
                .expect("measurement")
            })
            .collect();
        let base_acc = measure_config(
            &p.bench.graph,
            &p.registry,
            &at_core::Config::baseline(&p.bench.graph),
            &p.test.batches,
            QosMetric::Accuracy,
            &test_ref,
            0,
        )
        .expect("baseline");

        // Simulated per-batch baseline time on the device model.
        let perf = PerfModel::new(&p.bench.graph, &p.registry, p.cal.batches[0].shape())
            .expect("perf model");
        let base_time = perf.device_time(
            &at_core::Config::baseline(&p.bench.graph),
            &device.timing,
            &device.promise,
        );

        let mut table = Table::new(&[
            "Freq (MHz)",
            "Static time (norm)",
            "Dynamic time (norm)",
            "Accuracy (%)",
            "Acc drop (pp)",
        ]);
        let mut tuner = RuntimeTuner::new(curve.clone(), policy, 1, base_time, 7);
        for step in 0..ladder.len() {
            let slowdown = ladder.slowdown(step);
            // Run a window of batches at this frequency.
            let mut dyn_times = Vec::new();
            let mut accs = Vec::new();
            for _ in 0..batches_per_freq {
                let speedup = tuner.current_speedup();
                let t = base_time * slowdown / speedup;
                dyn_times.push(t / base_time);
                let acc = match tuner.current_index() {
                    None => base_acc,
                    Some(idx) => accuracies[idx],
                };
                accs.push(acc);
                tuner.record_invocation(t);
            }
            let avg_dyn = dyn_times.iter().sum::<f64>() / dyn_times.len() as f64;
            let avg_acc = accs.iter().sum::<f64>() / accs.len() as f64;
            table.row(vec![
                format!("{:.0}", ladder.at(step)),
                format!("{slowdown:.2}"),
                format!("{avg_dyn:.2}"),
                format!("{avg_acc:.2}"),
                format!("{:.2}", base_acc - avg_acc),
            ]);
            json.push(serde_json::json!({
                "benchmark": id.name(), "freq_mhz": ladder.at(step),
                "static_norm_time": slowdown, "dynamic_norm_time": avg_dyn,
                "accuracy": avg_acc, "accuracy_drop": base_acc - avg_acc,
                "switches": tuner.switches,
            }));
        }
        println!(
            "\nFigure 6 ({}): runtime adaptation across GPU frequencies",
            id.name()
        );
        println!("(static time grows with slowdown; dynamic stays ~1.0 while accuracy degrades)\n");
        table.print();
    }
    at_bench::report::write_json("fig6", &json);
}
