//! Table 1: CNN benchmarks, datasets, layer counts, FP32 baseline accuracy
//! and auto-tuning search-space size.
//!
//! Layer counts and search-space sizes are *computed* from the built
//! graphs and the knob registry; baseline accuracy is *measured* on the
//! held-out test split (the synthetic datasets are teacher-calibrated to
//! the paper's accuracy, so measured ≈ paper up to sampling noise).

use at_bench::harness::{Prepared, Sizing};
use at_bench::report::{pct, Table};
use at_core::knobs::KnobSet;
use at_core::qos::QosMetric;
use at_models::zoo::conv_dense_layers;
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let mut table = Table::new(&[
        "Network",
        "Dataset",
        "Layers",
        "Layers(paper)",
        "Accuracy",
        "Accuracy(paper)",
        "log10(SearchSpace)",
        "log10(paper)",
    ]);
    let mut rows_json = Vec::new();
    for id in BenchmarkId::ALL {
        let p = Prepared::new(id, sizing);
        let layers = conv_dense_layers(&p.bench.graph);
        let test_ref = p.test_reference();
        let acc = at_core::profile::measure_config(
            &p.bench.graph,
            &p.registry,
            &at_core::Config::baseline(&p.bench.graph),
            &p.test.batches,
            QosMetric::Accuracy,
            &test_ref,
            0,
        )
        .expect("baseline runs");
        let space = p
            .registry
            .search_space_log10(&p.bench.graph, KnobSet::HardwareIndependent);
        table.row(vec![
            id.name().to_string(),
            id.dataset().to_string(),
            layers.to_string(),
            id.paper_layers().to_string(),
            pct(acc),
            pct(id.paper_baseline_accuracy()),
            format!("{space:.1}"),
            format!("{:.1}", id.paper_search_space().log10()),
        ]);
        rows_json.push(serde_json::json!({
            "network": id.name(),
            "dataset": id.dataset(),
            "layers": layers,
            "layers_paper": id.paper_layers(),
            "accuracy_measured": acc,
            "accuracy_paper": id.paper_baseline_accuracy(),
            "search_space_log10": space,
            "search_space_log10_paper": id.paper_search_space().log10(),
        }));
    }
    println!("Table 1: benchmarks, layer counts, baseline accuracy, search space\n");
    table.print();
    at_bench::report::write_json("table1", &rows_json);
}
