//! Closed-loop runtime adaptation under injected disturbances; see
//! `at_bench::runtime_adapt` for the experiment body.

fn main() {
    at_bench::runtime_adapt::run();
}
