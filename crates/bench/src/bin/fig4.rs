//! Figure 4: install-time distributed predictive tuning with the PROMISE
//! accelerator — energy reductions on GPU+PROMISE at ΔQoS 3%.
//!
//! Paper: geomean energy reductions of 4.7x (Π1), 3.3x (Π2) and 4.8x
//! (empirical); individual benchmarks reach 10–16x when most convolutions
//! map to PROMISE; ResNet-50 maps none. §7.4 also reports per-device
//! profile-collection time and server autotuning time, printed here.

use at_bench::harness::{geomean, Prepared, Sizing};
use at_bench::report::{fx, Table};
use at_core::empirical::EmpiricalTuner;
use at_core::install::{distributed_install_tune, EdgeDevice, InstallObjective};
use at_core::knobs::KnobSet;
use at_core::predict::PredictionModel;
use at_core::qos::{QosMetric, QosReference};
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    // The paper emulates 100 edge devices; shards are per calibration
    // batch, so at most #batches devices are active.
    let n_edge = std::env::var("AT_EDGE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let bench_ids: Vec<BenchmarkId> = if std::env::var("AT_FULL").is_ok() {
        BenchmarkId::ALL.to_vec()
    } else {
        vec![
            BenchmarkId::LeNet,
            BenchmarkId::AlexNetCifar10,
            BenchmarkId::AlexNet2,
            BenchmarkId::Vgg16Cifar10,
            BenchmarkId::ResNet18,
        ]
    };
    let mut table = Table::new(&[
        "Benchmark",
        "Pred-Pi1",
        "Pred-Pi2",
        "Empirical",
        "ProfileTime(s)",
        "ServerTune(s)",
    ]);
    let mut geo = [Vec::new(), Vec::new(), Vec::new()];
    let mut json = Vec::new();

    for id in bench_ids {
        eprintln!("[fig4] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let reference_full = p.cal_reference();
        let labels = p.cal.labels.clone();
        let shard_ref = move |i: usize, n: usize| {
            QosReference::Labels(
                labels
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % n == i)
                    .map(|(_, l)| l.clone())
                    .collect(),
            )
        };
        let mut row = vec![id.name().to_string()];
        let mut profile_t = 0.0f64;
        let mut server_t = 0.0f64;
        for (gi, model) in [PredictionModel::Pi1, PredictionModel::Pi2]
            .iter()
            .enumerate()
        {
            let params = at_core::tuner::TunerParams {
                knob_set: KnobSet::WithHardware,
                ..p.params(3.0, *model, sizing)
            };
            let r = distributed_install_tune(
                &p.bench.graph,
                &p.registry,
                &device,
                InstallObjective::EnergyReduction,
                &p.cal.batches,
                QosMetric::Accuracy,
                &shard_ref,
                &reference_full,
                n_edge,
                &params,
                p.cal.batches[0].shape(),
                0,
            )
            .expect("install tuning");
            let best = r
                .curve
                .points()
                .iter()
                .filter(|pt| pt.qos >= params.qos_min)
                .map(|pt| pt.perf)
                .fold(1.0f64, f64::max);
            geo[gi].push(best);
            row.push(fx(best));
            profile_t = profile_t.max(r.device_profile_time_s);
            server_t = server_t.max(r.server_tuning_time_s);
        }
        // Empirical with hardware knobs (bounded iterations).
        let emp_iters = std::env::var("AT_EMP_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(sizing.max_iters.min(150));
        let mut params = p.params(3.0, PredictionModel::Pi2, sizing);
        params.knob_set = KnobSet::WithHardware;
        params.max_iters = emp_iters;
        params.convergence_window = emp_iters;
        let etuner = EmpiricalTuner {
            graph: &p.bench.graph,
            registry: &p.registry,
            inputs: &p.cal.batches,
            metric: QosMetric::Accuracy,
            reference: &reference_full,
            input_shape: p.cal.batches[0].shape(),
            promise_seed: 0,
        };
        let er = etuner.tune(&params).expect("empirical");
        let perf_model =
            at_core::perf::PerfModel::new(&p.bench.graph, &p.registry, p.cal.batches[0].shape())
                .unwrap();
        let best_emp = er
            .curve
            .points()
            .iter()
            .filter(|pt| pt.qos >= params.qos_min)
            .map(|pt| {
                perf_model.device_energy_reduction(
                    &pt.config,
                    &device.timing,
                    &device.promise,
                    &device.power,
                )
            })
            .fold(1.0f64, f64::max);
        geo[2].push(best_emp);
        row.push(fx(best_emp));
        row.push(format!("{profile_t:.1}"));
        row.push(format!("{server_t:.1}"));
        json.push(serde_json::json!({
            "benchmark": id.name(),
            "pi1": geo[0].last(), "pi2": geo[1].last(), "empirical": best_emp,
            "device_profile_time_s": profile_t, "server_tuning_time_s": server_t,
        }));
        table.row(row);
    }
    table.row(vec![
        "Geo-mean".into(),
        fx(geomean(&geo[0])),
        fx(geomean(&geo[1])),
        fx(geomean(&geo[2])),
        "".into(),
        "".into(),
    ]);
    println!("Figure 4: GPU+PROMISE energy reductions, install-time distributed tuning, dQoS 3%");
    println!("(paper geomeans: Pi1 4.7x, Pi2 3.3x, empirical 4.8x)\n");
    table.print();
    at_bench::report::write_json("fig4", &json);
}
