//! Fault-injection sweep over the supervised tuning pipeline; see
//! `at_bench::tune_faults` for the experiment body.

fn main() {
    at_bench::tune_faults::run();
}
