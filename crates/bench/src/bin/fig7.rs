//! Figure 7: the combined CNN + image-processing benchmark — speedups on a
//! 3×3 grid of (accuracy, PSNR) threshold pairs.
//!
//! QoS is the pair (classification accuracy of AlexNet2, PSNR of the Canny
//! edge maps). As either threshold is relaxed, the tuner finds more
//! approximation opportunities and speedup grows. As in the paper, only
//! model Π2 is applied: the Canny output set depends on the CNN's routing
//! decisions, so Π1's equal-shape ΔT requirement does not hold (§7.6 / §8).

use at_bench::harness::{geomean, Sizing};
use at_bench::report::{fx, Table};
use at_core::config::{single_op_configs, Config};
use at_core::install::EdgeDevice;
use at_core::knobs::{KnobId, KnobSet};
use at_core::perf::PerfModel;
use at_core::search::{Autotuner, SearchSpace};
use at_imgproc::combined::CombinedApp;
use at_models::data::build_dataset;
use at_models::ModelScale;

struct It {
    config: Config,
}

fn main() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    let mut app = CombinedApp::new(ModelScale::Tiny).expect("combined app builds");
    let ds = build_dataset(&app.cnn, sizing.samples.min(48), sizing.batch, 0xF16);
    app.calibrate_routing(&ds.batches).expect("routing");
    let golden = app.golden(&ds.batches).expect("golden");
    eprintln!(
        "[fig7] {} of {} images forwarded to Canny",
        golden.forwarded.len(),
        ds.len()
    );

    // Baseline joint QoS.
    let base_cfg = Config::from_knobs(vec![KnobId::BASELINE; app.total_nodes()]);
    let (acc_base, _psnr_base) = app
        .measure(&base_cfg, &ds.batches, &ds.labels, &golden, 0)
        .expect("baseline");

    // --- Π2-style joint profiles: (Δacc, Δmse) per (graph node, knob). ---
    eprintln!("[fig7] collecting joint profiles …");
    let n_cnn = app.cnn.graph.len();
    let mut pairs: Vec<(usize, KnobId)> = Vec::new();
    for (node, knob) in
        single_op_configs(&app.cnn.graph, &app.registry, KnobSet::HardwareIndependent)
    {
        pairs.push((node, knob));
    }
    for (node, knob) in single_op_configs(&app.canny, &app.registry, KnobSet::HardwareIndependent) {
        pairs.push((n_cnn + node, knob));
    }
    let mse_of = |psnr: f64| 10f64.powf(-psnr / 10.0);
    let mut dacc = vec![0.0f64; pairs.len()];
    let mut dmse = vec![0.0f64; pairs.len()];
    for (i, &(node, knob)) in pairs.iter().enumerate() {
        let mut c = base_cfg.clone();
        c.set_knob(node, knob);
        let (a, p) = app
            .measure(&c, &ds.batches, &ds.labels, &golden, 0)
            .expect("profile measure");
        dacc[i] = a - acc_base;
        dmse[i] = mse_of(p); // baseline MSE is 0
    }
    let pair_index =
        |node: usize, knob: KnobId| pairs.iter().position(|&(n, k)| n == node && k == knob);

    // Combined performance model: sum of both graphs' Eqn-3 costs.
    let cnn_perf = PerfModel::new(&app.cnn.graph, &app.registry, ds.batches[0].shape()).unwrap();
    let canny_input = at_tensor::Shape::nchw(1, 1, 32, 32);
    let canny_perf = PerfModel::new(&app.canny, &app.registry, canny_input).unwrap();
    let split = |c: &Config| {
        (
            Config::from_knobs(c.knobs()[..n_cnn].to_vec()),
            Config::from_knobs(c.knobs()[n_cnn..].to_vec()),
        )
    };
    let speedup = |c: &Config| {
        let (cc, kc) = split(c);
        let base = cnn_perf.predicted_cost(&Config::baseline(&app.cnn.graph))
            + canny_perf.predicted_cost(&Config::baseline(&app.canny));
        let cost = cnn_perf.predicted_cost(&cc) + canny_perf.predicted_cost(&kc);
        base / cost.max(1e-12)
    };
    let device_speedup = |c: &Config| {
        let (cc, kc) = split(c);
        let base = cnn_perf.device_time(
            &Config::baseline(&app.cnn.graph),
            &device.timing,
            &device.promise,
        ) + canny_perf.device_time(
            &Config::baseline(&app.canny),
            &device.timing,
            &device.promise,
        );
        let t = cnn_perf.device_time(&cc, &device.timing, &device.promise)
            + canny_perf.device_time(&kc, &device.timing, &device.promise);
        base / t.max(1e-30)
    };

    // --- The 3×3 grid. ---
    let acc_drops = [1.0, 2.0, 3.0];
    let psnr_mins = [24.0, 20.0, 16.0];
    let mut table = Table::new(&["PSNR \\ Acc", "drop 1pp", "drop 2pp", "drop 3pp"]);
    let mut json = Vec::new();
    let mut all = Vec::new();
    for &psnr_min in &psnr_mins {
        let mut row = vec![format!("PSNR>={psnr_min}")];
        for &drop in &acc_drops {
            let acc_min = acc_base - drop;
            // Predictive Π2 search over the joint space.
            let space = SearchSpace::new(app.node_knobs(KnobSet::HardwareIndependent));
            let mut tuner = Autotuner::new(space, sizing.max_iters, sizing.convergence, 0xF77);
            let mut candidates: Vec<Config> = Vec::new();
            // Seed with the feasible anchors (baseline, all-FP16), as the
            // main tuner does — random joint configs are almost surely
            // infeasible.
            let mut fp16_cfg = base_cfg.clone();
            for (node, ks) in app
                .node_knobs(KnobSet::HardwareIndependent)
                .iter()
                .enumerate()
            {
                if ks.len() > 1 {
                    fp16_cfg.set_knob(node, KnobId(1));
                }
            }
            let mut pending: Vec<Config> = vec![base_cfg.clone(), fp16_cfg];
            loop {
                let it_config = if let Some(c) = pending.pop() {
                    c
                } else if tuner.continue_tuning() {
                    tuner.next_config().config
                } else {
                    break;
                };
                let it = It { config: it_config };
                let mut pa = acc_base;
                let mut pm = 0.0f64;
                for (node, &k) in it.config.knobs().iter().enumerate() {
                    if k == KnobId::BASELINE {
                        continue;
                    }
                    if let Some(pi) = pair_index(node, k) {
                        pa += dacc[pi];
                        pm += dmse[pi];
                    }
                }
                let ppsnr = if pm <= 0.0 { 150.0 } else { -10.0 * pm.log10() };
                let margin = CombinedApp::margin(pa, ppsnr, acc_min, psnr_min);
                let fitness = if margin >= 0.0 {
                    speedup(&it.config)
                } else {
                    margin
                };
                if margin >= 0.0 {
                    candidates.push(it.config.clone());
                }
                tuner.report(&it.config, fitness);
            }
            // Validate the most promising candidates for real.
            candidates.sort_by(|a, b| speedup(b).partial_cmp(&speedup(a)).unwrap());
            candidates.dedup();
            let mut best = 1.0f64;
            for c in candidates.iter().take(12) {
                let (a, p) = app
                    .measure(c, &ds.batches, &ds.labels, &golden, 0)
                    .expect("validation");
                if a >= acc_min && p >= psnr_min {
                    best = best.max(device_speedup(c));
                    break; // candidates are sorted by predicted speedup
                }
            }
            all.push(best);
            row.push(fx(best));
            json.push(serde_json::json!({
                "accuracy_drop_pp": drop, "psnr_min_db": psnr_min, "speedup": best,
            }));
        }
        table.row(row);
    }
    println!("Figure 7: combined CNN+Canny speedups over (accuracy, PSNR) thresholds");
    println!("(speedup grows as either threshold is relaxed)\n");
    table.print();
    println!("\nGeomean over the grid: {}", fx(geomean(&all)));
    at_bench::report::write_json("fig7", &json);
}
