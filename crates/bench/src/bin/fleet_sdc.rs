//! Silent-data-corruption campaign writing `BENCH_sdc.json`; see
//! `at_bench::fleet_sdc` for the experiment body.

fn main() {
    at_bench::fleet_sdc::run();
}
