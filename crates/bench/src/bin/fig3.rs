//! Figure 3: predictive (Π1, Π2) vs empirical tuning — speedups at ΔQoS 3%.
//!
//! Paper geomeans: Π1 2.27x, Π2 1.97x, empirical 2.25x. Π2 trails because
//! it systematically underestimates accuracy loss for some benchmarks, so
//! more of its configurations are removed during validation.

use at_bench::harness::{geomean, Prepared, Sizing};
use at_bench::report::{fx, Table};
use at_core::empirical::EmpiricalTuner;
use at_core::install::EdgeDevice;
use at_core::predict::PredictionModel;
use at_core::qos::QosMetric;
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    let mut table = Table::new(&["Benchmark", "Predictive-Pi1", "Predictive-Pi2", "Empirical"]);
    let mut geo = [Vec::new(), Vec::new(), Vec::new()];
    let mut json = Vec::new();
    // Empirical tuning runs the program every iteration; cap its budget so
    // the figure regenerates in reasonable time (the *time* comparison is
    // Table 4's job; here both sides converge).
    let emp_iters = std::env::var("AT_EMP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sizing.max_iters.min(200));

    for id in BenchmarkId::ALL {
        eprintln!("[fig3] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
        let mut row = vec![id.name().to_string()];
        let mut entry = serde_json::json!({ "benchmark": id.name() });
        for (gi, model) in [PredictionModel::Pi1, PredictionModel::Pi2]
            .iter()
            .enumerate()
        {
            let params = p.params(3.0, *model, sizing);
            let result = p.tune(&profiles, &params);
            let s = p
                .evaluate_best(&result.curve, params.qos_min, &device)
                .map_or(1.0, |e| e.speedup);
            geo[gi].push(s);
            row.push(fx(s));
            entry[model.name()] = serde_json::json!(s);
        }
        // Empirical.
        let mut params = p.params(3.0, PredictionModel::Pi2, sizing);
        params.max_iters = emp_iters;
        params.convergence_window = emp_iters;
        let reference = p.cal_reference();
        let etuner = EmpiricalTuner {
            graph: &p.bench.graph,
            registry: &p.registry,
            inputs: &p.cal.batches,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: p.cal.batches[0].shape(),
            promise_seed: 0,
        };
        let er = etuner.tune(&params).expect("empirical tuning");
        let s = p
            .evaluate_best(&er.curve, params.qos_min, &device)
            .map_or(1.0, |e| e.speedup);
        geo[2].push(s);
        row.push(fx(s));
        entry["Empirical"] = serde_json::json!(s);
        table.row(row);
        json.push(entry);
    }
    table.row(vec![
        "Geo-mean".into(),
        fx(geomean(&geo[0])),
        fx(geomean(&geo[1])),
        fx(geomean(&geo[2])),
    ]);
    println!("Figure 3: predictive vs empirical tuning, speedups at dQoS 3%");
    println!("(paper geomeans: Pi1 2.27x, Pi2 1.97x, empirical 2.25x)\n");
    table.print();
    at_bench::report::write_json("fig3", &json);
}
