//! Table 4: predictive-tuning times compared to empirical tuning.
//!
//! Paper: Π1 is 12.76x and Π2 20.37x faster than empirical (geomean).
//! Times are wall-clock for the search + validation phases at equal
//! iteration budgets; empirical evaluates every iteration by running the
//! program, predictive only validates the shipped candidates.

use at_bench::harness::{geomean, Prepared, Sizing};
use at_bench::report::Table;
use at_core::empirical::EmpiricalTuner;
use at_core::predict::PredictionModel;
use at_core::qos::QosMetric;
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let mut table = Table::new(&[
        "Benchmark",
        "Empirical(s)",
        "Pred-Pi1(s)",
        "Pred-Pi2(s)",
        "Pi1-red",
        "Pi2-red",
    ]);
    let mut red1 = Vec::new();
    let mut red2 = Vec::new();
    let mut json = Vec::new();
    // Equal iteration budgets for a fair per-iteration comparison.
    let iters = std::env::var("AT_EMP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sizing.max_iters.min(200));

    for id in BenchmarkId::ALL {
        eprintln!("[table4] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
        let mut times = [0.0f64; 2];
        for (i, model) in [PredictionModel::Pi1, PredictionModel::Pi2]
            .iter()
            .enumerate()
        {
            let mut params = p.params(3.0, *model, sizing);
            params.max_iters = iters;
            params.convergence_window = iters;
            let r = p.tune(&profiles, &params);
            times[i] = r.tuning_time_s();
        }
        let reference = p.cal_reference();
        let mut params = p.params(3.0, PredictionModel::Pi2, sizing);
        params.max_iters = iters;
        params.convergence_window = iters;
        let etuner = EmpiricalTuner {
            graph: &p.bench.graph,
            registry: &p.registry,
            inputs: &p.cal.batches,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: p.cal.batches[0].shape(),
            promise_seed: 0,
        };
        let er = etuner.tune(&params).expect("empirical tuning");
        let emp = er.tuning_time_s();
        let r1 = emp / times[0].max(1e-9);
        let r2 = emp / times[1].max(1e-9);
        red1.push(r1);
        red2.push(r2);
        table.row(vec![
            id.name().to_string(),
            format!("{emp:.2}"),
            format!("{:.2}", times[0]),
            format!("{:.2}", times[1]),
            format!("{r1:.2}x"),
            format!("{r2:.2}x"),
        ]);
        json.push(serde_json::json!({
            "benchmark": id.name(), "empirical_s": emp,
            "pi1_s": times[0], "pi2_s": times[1],
            "pi1_reduction": r1, "pi2_reduction": r2,
        }));
    }
    table.row(vec![
        "Geomean".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{:.2}x", geomean(&red1)),
        format!("{:.2}x", geomean(&red2)),
    ]);
    println!("Table 4: tuning times, predictive vs empirical");
    println!("(paper geomean reductions: Pi1 12.76x, Pi2 20.37x)\n");
    table.print();
    at_bench::report::write_json("table4", &json);
}
