//! §8 pruning-interaction study: starting from magnitude-pruned models,
//! perforated convolutions still reduce MACs by a further ~1.2–1.3x while
//! losing <1 percentage point of accuracy vs the pruned model.

use at_bench::harness::{Prepared, Sizing};
use at_bench::report::Table;
use at_core::empirical::EmpiricalTuner;
use at_core::knobs::KnobSet;
use at_core::qos::QosMetric;
use at_models::prune::{nonzero_conv_macs, prune_filters};
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let mut table = Table::new(&[
        "Benchmark",
        "Pruned filters",
        "MACs (pruned)",
        "MACs (pruned+perf)",
        "MAC reduction",
        "Acc drop (pp)",
    ]);
    let mut json = Vec::new();
    for id in [
        BenchmarkId::MobileNet,
        BenchmarkId::Vgg16Cifar10,
        BenchmarkId::ResNet18,
    ] {
        eprintln!("[pruning] {} …", id.name());
        let mut p = Prepared::new(id, sizing);
        let report = prune_filters(&mut p.bench.graph, 0.3);
        let macs_pruned = nonzero_conv_macs(&p.bench.graph, p.cal.batches[0].shape());

        // Tune perforation on top of the pruned model (empirical, as §8).
        let pruned_base = p.baseline_cal_accuracy();
        let reference = p.cal_reference();
        let mut params = p.params(0.0, at_core::predict::PredictionModel::Pi2, sizing);
        params.qos_min = pruned_base - 1.0; // <1pp vs the *pruned* model
        params.knob_set = KnobSet::HardwareIndependent;
        params.max_iters = params.max_iters.min(150);
        params.convergence_window = params.max_iters;
        let etuner = EmpiricalTuner {
            graph: &p.bench.graph,
            registry: &p.registry,
            inputs: &p.cal.batches,
            metric: QosMetric::Accuracy,
            reference: &reference,
            input_shape: p.cal.batches[0].shape(),
            promise_seed: 0,
        };
        let r = etuner.tune(&params).expect("tuning");
        // MACs under the best configuration: scale each conv's MACs by its
        // knob's kept fraction.
        let best = r
            .curve
            .points()
            .iter()
            .max_by(|a, b| a.perf.partial_cmp(&b.perf).unwrap());
        let (macs_after, acc_drop) = match best {
            Some(pt) => {
                let choices = pt.config.decode(&p.registry, &p.bench.graph);
                let mut total = 0.0;
                let shapes =
                    at_ir::shapes::infer_shapes(&p.bench.graph, p.cal.batches[0].shape()).unwrap();
                for node in p.bench.graph.nodes() {
                    if let at_ir::OpKind::Conv2d { weight, .. } = node.op {
                        let w = p.bench.graph.param(weight);
                        let nz = w.data().iter().filter(|&&x| x != 0.0).count() as f64
                            / w.len().max(1) as f64;
                        let out = shapes[node.id.0 as usize];
                        if let (Ok((n, k, ho, wo)), Ok((_, c, rr, ss))) =
                            (out.as_nchw(), w.shape().as_nchw())
                        {
                            let dense = (n * k * ho * wo * c * rr * ss) as f64 * nz;
                            let kept = match choices[node.id.0 as usize] {
                                at_ir::ApproxChoice::Digital { conv, .. } => conv.kept_fraction(),
                                _ => 1.0,
                            };
                            total += dense * kept;
                        }
                    }
                }
                (total, pruned_base - pt.qos)
            }
            None => (macs_pruned, 0.0),
        };
        let reduction = macs_pruned / macs_after.max(1.0);
        table.row(vec![
            id.name().to_string(),
            format!("{:.0}%", 100.0 * report.fraction()),
            format!("{macs_pruned:.2e}"),
            format!("{macs_after:.2e}"),
            format!("{reduction:.2}x"),
            format!("{acc_drop:.2}"),
        ]);
        json.push(serde_json::json!({
            "benchmark": id.name(),
            "pruned_fraction": report.fraction(),
            "mac_reduction": reduction,
            "accuracy_drop_vs_pruned": acc_drop,
        }));
    }
    println!("§8 pruning + perforation study (paper: MACs ↓1.2–1.3x, <1pp loss)\n");
    table.print();
    at_bench::report::write_json("pruning_study", &json);
}
