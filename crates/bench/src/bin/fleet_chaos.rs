//! Chaos campaign load test writing `BENCH_chaos.json`; see
//! `at_bench::fleet_chaos` for the experiment body.

fn main() {
    at_bench::fleet_chaos::run();
}
