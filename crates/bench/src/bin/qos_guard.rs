//! Trust-but-verify QoS guard under curve miscalibration; see
//! `at_bench::qos_guard` for the experiment body.

fn main() {
    at_bench::qos_guard::run();
}
