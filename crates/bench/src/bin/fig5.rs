//! Figure 5: GPU, DDR and total system power at each GPU DVFS step while
//! running ResNet-18 (paper: GPU power drops ~7x, SYS ~1.9x from
//! 1300 MHz to ~319 MHz; DDR decreases only slightly).

use at_bench::report::Table;
use at_hw::{FrequencyLadder, PowerModel};

fn main() {
    let ladder = FrequencyLadder::tx2_gpu();
    let model = PowerModel::tx2();
    let mut table = Table::new(&["Freq (MHz)", "GPU (W)", "CPU (W)", "DDR (W)", "SYS (W)"]);
    let mut json = Vec::new();
    for &f in ladder.frequencies() {
        // Utilisation 1.0: the GPU is busy with inference (ResNet-18 run).
        let r = model.rails(f, 1.0);
        table.row(vec![
            format!("{f:.0}"),
            format!("{:.2}", r.gpu),
            format!("{:.2}", r.cpu),
            format!("{:.2}", r.ddr),
            format!("{:.2}", r.sys()),
        ]);
        json.push(serde_json::json!({
            "freq_mhz": f, "gpu_w": r.gpu, "cpu_w": r.cpu,
            "ddr_w": r.ddr, "sys_w": r.sys(),
        }));
    }
    let hi = model.rails(ladder.max(), 1.0);
    let lo = model.rails(ladder.at(ladder.len() - 1), 1.0);
    println!("Figure 5: rail power vs GPU frequency (ResNet-18 running)\n");
    table.print();
    println!(
        "\nGPU power drop: {:.2}x (paper ~7x)   SYS power drop: {:.2}x (paper ~1.9x)",
        hi.gpu / lo.gpu,
        hi.sys() / lo.sys()
    );
    at_bench::report::write_json("fig5", &json);
}
