//! Ad-hoc debugging binary for tuning behaviour (not part of the paper's
//! experiment set).
use at_bench::harness::{Prepared, Sizing};
use at_core::install::EdgeDevice;
use at_core::predict::PredictionModel;

fn main() {
    let sizing = Sizing::from_env();
    let id = at_models::BenchmarkId::AlexNetCifar10;
    let p = Prepared::new(id, sizing);
    println!("baseline cal acc = {:.2}", p.baseline_cal_accuracy());
    let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    println!(
        "qos_base={:.2} pairs={} ",
        profiles.qos_base,
        profiles.pairs.len()
    );
    // Distribution of dq.
    let mut dq = profiles.dq.clone();
    dq.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "dq: min={:.2} p25={:.2} median={:.2} p75={:.2} max={:.2}",
        dq[0],
        dq[dq.len() / 4],
        dq[dq.len() / 2],
        dq[3 * dq.len() / 4],
        dq[dq.len() - 1]
    );
    let params = p.params(3.0, PredictionModel::Pi1, sizing);
    println!("qos_min={:.2}", params.qos_min);
    let started = std::time::Instant::now();
    let r = p.tune(&profiles, &params);
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "alpha={:.3} iters={} curve_len={}",
        r.alpha,
        r.iterations,
        r.curve.len()
    );
    println!(
        "throughput: {:.0} configs/sec at {} threads (search {:.2}s + validate {:.2}s)",
        r.iterations as f64 / elapsed.max(1e-9),
        rayon::current_num_threads(),
        r.search_time_s,
        r.validation_time_s,
    );
    println!(
        "cache: hits={} misses={} dedup={} hit_rate={:.1}%",
        r.cache.hits,
        r.cache.misses,
        r.cache.dedup,
        100.0 * r.cache.hit_rate(),
    );
    let stride = (r.telemetry.len() / 8).max(1);
    for t in r.telemetry.iter().step_by(stride) {
        println!(
            "  round {:>4}: proposed={:<3} cached={:<3} evaluated={:<3} best={:.3}",
            t.round, t.proposed, t.cached, t.evaluated, t.best_fitness
        );
    }
    for pt in r.curve.points() {
        println!(
            "  point qos={:.2} predperf={:.3} approx_ops={}",
            pt.qos,
            pt.perf,
            pt.config.approximated_ops()
        );
    }
    let device = EdgeDevice::tx2();
    match p.evaluate_best(&r.curve, params.qos_min, &device) {
        Some(e) => println!(
            "best: speedup={:.3} energy={:.3} test_drop={:.2} hist={:?}",
            e.speedup, e.energy_reduction, e.test_drop, e.histogram
        ),
        None => println!("evaluate_best: None"),
    }
}
