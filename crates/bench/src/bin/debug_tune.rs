//! Ad-hoc debugging binary for tuning behaviour (not part of the paper's
//! experiment set).
use at_bench::harness::{Prepared, Sizing};
use at_core::install::EdgeDevice;
use at_core::predict::PredictionModel;

fn main() {
    let sizing = Sizing::from_env();
    let id = at_models::BenchmarkId::AlexNetCifar10;
    let p = Prepared::new(id, sizing);
    println!("baseline cal acc = {:.2}", p.baseline_cal_accuracy());
    let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    println!("qos_base={:.2} pairs={} ", profiles.qos_base, profiles.pairs.len());
    // Distribution of dq.
    let mut dq = profiles.dq.clone();
    dq.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("dq: min={:.2} p25={:.2} median={:.2} p75={:.2} max={:.2}",
        dq[0], dq[dq.len()/4], dq[dq.len()/2], dq[3*dq.len()/4], dq[dq.len()-1]);
    let params = p.params(3.0, PredictionModel::Pi1, sizing);
    println!("qos_min={:.2}", params.qos_min);
    let r = p.tune(&profiles, &params);
    println!("alpha={:.3} iters={} curve_len={}", r.alpha, r.iterations, r.curve.len());
    for pt in r.curve.points() {
        println!("  point qos={:.2} predperf={:.3} approx_ops={}", pt.qos, pt.perf, pt.config.approximated_ops());
    }
    let device = EdgeDevice::tx2();
    match p.evaluate_best(&r.curve, params.qos_min, &device) {
        Some(e) => println!("best: speedup={:.3} energy={:.3} test_drop={:.2} hist={:?}", e.speedup, e.energy_reduction, e.test_drop, e.histogram),
        None => println!("evaluate_best: None"),
    }
}
