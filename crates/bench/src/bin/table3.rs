//! Table 3: approximation knobs of the top-performing GPU configuration
//! (maximum speedup) per benchmark at ΔQoS 3%, plus the offset-tuning
//! ablation the §7.2 discussion calls out.

use at_bench::harness::{Prepared, Sizing};
use at_bench::report::Table;
use at_core::install::EdgeDevice;
use at_core::predict::PredictionModel;
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    let mut table = Table::new(&["Benchmark", "Occurrences of Approximation Knobs"]);
    let mut json = Vec::new();
    for id in BenchmarkId::ALL {
        eprintln!("[table3] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
        let params = p.params(3.0, PredictionModel::Pi1, sizing);
        let result = p.tune(&profiles, &params);
        let hist = p
            .evaluate_best(&result.curve, params.qos_min, &device)
            .map(|e| e.histogram)
            .unwrap_or_default();
        let rendered = hist
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(vec![id.name().to_string(), rendered]);
        json.push(serde_json::json!({ "benchmark": id.name(), "histogram": hist }));
    }
    println!("Table 3: knobs of the best GPU configuration at dQoS 3%\n");
    table.print();
    at_bench::report::write_json("table3", &json);
}
