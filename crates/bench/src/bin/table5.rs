//! Table 5: capability comparison of ApproxTuner against the most closely
//! related systems (qualitative; reproduced from §9).

use at_bench::report::Table;

fn main() {
    let mut t = Table::new(&[
        "System",
        "AlgoApprox",
        "AccelApprox",
        "MultiDomain",
        "PrecTuning",
        "NoCodeChanges",
        "Retarget",
        "PortableObj",
        "Dev+Install",
        "RuntimeTuning",
        "Predictive",
        "ModelApprox",
        "Retraining",
    ]);
    let yes = "yes";
    let no = "-";
    t.row(vec![
        "ApproxTuner".into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        no.into(),
        no.into(),
    ]);
    t.row(vec![
        "ApproxHPVM".into(),
        no.into(),
        yes.into(),
        no.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
    ]);
    t.row(vec![
        "TVM/AutoTVM".into(),
        no.into(),
        no.into(),
        no.into(),
        yes.into(),
        yes.into(),
        yes.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        yes.into(),
        yes.into(),
    ]);
    t.row(vec![
        "ACCEPT".into(),
        yes.into(),
        no.into(),
        yes.into(),
        yes.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
    ]);
    t.row(vec![
        "PetaBricks".into(),
        yes.into(),
        no.into(),
        yes.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
        no.into(),
    ]);
    println!("Table 5: capability comparison (reproduced from the paper's §9)\n");
    t.print();
}
