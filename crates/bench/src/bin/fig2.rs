//! Figures 2a and 2b: GPU speedups and energy reductions with
//! hardware-independent approximations at ΔQoS 1%, 2% and 3%.
//!
//! For every benchmark and loss threshold we run development-time
//! predictive tuning with both predictors Π1 and Π2, refine the shipped
//! curve with simulated-device measurements (install-time, software-only
//! path), pick the best configuration under the threshold and report its
//! device speedup and energy reduction — "the results are reported after
//! trying both predictors and choosing the best result" (§7.1).

use at_bench::harness::{geomean, Prepared, Sizing};
use at_bench::report::{fx, Table};
use at_core::install::EdgeDevice;
use at_core::predict::PredictionModel;
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    let device = EdgeDevice::tx2();
    let drops = [1.0, 2.0, 3.0];
    let mut speed = Table::new(&["Benchmark", "dQoS 1%", "dQoS 2%", "dQoS 3%"]);
    let mut energy = Table::new(&["Benchmark", "dQoS 1%", "dQoS 2%", "dQoS 3%"]);
    let mut geo_s = [Vec::new(), Vec::new(), Vec::new()];
    let mut geo_e = [Vec::new(), Vec::new(), Vec::new()];
    let mut json = Vec::new();

    // AT_ONLY=name1,name2 restricts the sweep (useful at large AT_SAMPLES).
    let only: Option<Vec<String>> = std::env::var("AT_ONLY")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_lowercase()).collect());
    for id in BenchmarkId::ALL {
        if let Some(f) = &only {
            if !f.iter().any(|n| n == &id.name().to_lowercase()) {
                continue;
            }
        }
        eprintln!("[fig2] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
        let mut srow = vec![id.name().to_string()];
        let mut erow = vec![id.name().to_string()];
        for (di, &drop) in drops.iter().enumerate() {
            // Try both predictors, keep the better device speedup (§7.1).
            let mut best: Option<at_bench::harness::Evaluated> = None;
            for model in [PredictionModel::Pi1, PredictionModel::Pi2] {
                let params = p.params(drop, model, sizing);
                let result = p.tune(&profiles, &params);
                if let Some(e) = p.evaluate_best(&result.curve, params.qos_min, &device) {
                    if best.as_ref().is_none_or(|b| e.speedup > b.speedup) {
                        best = Some(e);
                    }
                }
            }
            let (s, e) = best
                .as_ref()
                .map_or((1.0, 1.0), |b| (b.speedup, b.energy_reduction));
            geo_s[di].push(s);
            geo_e[di].push(e);
            srow.push(fx(s));
            erow.push(fx(e));
            json.push(serde_json::json!({
                "benchmark": id.name(),
                "qos_drop": drop,
                "speedup": s,
                "energy_reduction": e,
                "test_drop": best.as_ref().map(|b| b.test_drop),
            }));
        }
        speed.row(srow);
        energy.row(erow);
    }
    speed.row(vec![
        "Geo-mean".into(),
        fx(geomean(&geo_s[0])),
        fx(geomean(&geo_s[1])),
        fx(geomean(&geo_s[2])),
    ]);
    energy.row(vec![
        "Geo-mean".into(),
        fx(geomean(&geo_e[0])),
        fx(geomean(&geo_e[1])),
        fx(geomean(&geo_e[2])),
    ]);

    println!("Figure 2a: GPU speedups (hardware-independent approximations)");
    println!("(paper geomeans: 2.14x / 2.23x / 2.28x)\n");
    speed.print();
    println!("\nFigure 2b: GPU energy reductions");
    println!("(paper geomeans: 1.99x / 2.06x / 2.11x)\n");
    energy.print();
    at_bench::report::write_json("fig2", &json);
}
