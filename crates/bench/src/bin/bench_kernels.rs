//! Kernel micro-benchmark binary: times the tiled/SIMD GEMM and im2col
//! conv kernels per knob family and writes `BENCH_kernels.json`.

fn main() {
    at_bench::bench_kernels::run();
}
