//! Fleet-scale multi-tenant load test writing `BENCH_serve.json`; see
//! `at_bench::serve_fleet` for the experiment body.

fn main() {
    at_bench::serve_fleet::run();
}
