//! §7.1 "Improvements for CPU": speedups on the CPU, which has no FP16
//! hardware, so only sampling and perforation help (paper geomeans:
//! 1.31x / 1.38x / 1.42x at ΔQoS 1/2/3%; max 1.89x for VGG16-CIFAR10).
//!
//! The development-time curve is hardware-independent; the CPU numbers
//! come from install-time software-only refinement against the CPU device
//! model — exactly the paper's flow for a second target.

use at_bench::harness::{geomean, Prepared, Sizing};
use at_bench::report::{fx, Table};
use at_core::install::EdgeDevice;
use at_core::predict::PredictionModel;
use at_hw::{DeviceSpec, TimingModel};
use at_models::BenchmarkId;

fn main() {
    let sizing = Sizing::from_env();
    // The CPU device: no FP16 units.
    let device = EdgeDevice {
        timing: TimingModel::new(DeviceSpec::tx2_cpu()),
        ..EdgeDevice::tx2()
    };
    let drops = [1.0, 2.0, 3.0];
    let mut table = Table::new(&["Benchmark", "dQoS 1%", "dQoS 2%", "dQoS 3%"]);
    let mut geo = [Vec::new(), Vec::new(), Vec::new()];
    let mut json = Vec::new();
    for id in BenchmarkId::ALL {
        eprintln!("[cpu] {} …", id.name());
        let p = Prepared::new(id, sizing);
        let profiles = p.profiles(at_core::knobs::KnobSet::HardwareIndependent);
        let mut row = vec![id.name().to_string()];
        for (di, &drop) in drops.iter().enumerate() {
            let params = p.params(drop, PredictionModel::Pi1, sizing);
            let result = p.tune(&profiles, &params);
            let s = p
                .evaluate_best(&result.curve, params.qos_min, &device)
                .map_or(1.0, |e| e.speedup);
            geo[di].push(s);
            row.push(fx(s));
            json.push(serde_json::json!({
                "benchmark": id.name(), "qos_drop": drop, "cpu_speedup": s,
            }));
        }
        table.row(row);
    }
    table.row(vec![
        "Geo-mean".into(),
        fx(geomean(&geo[0])),
        fx(geomean(&geo[1])),
        fx(geomean(&geo[2])),
    ]);
    println!("§7.1 CPU speedups (no FP16 hardware: sampling/perforation only)");
    println!("(paper geomeans: 1.31x / 1.38x / 1.42x)\n");
    table.print();
    at_bench::report::write_json("cpu_results", &json);
}
