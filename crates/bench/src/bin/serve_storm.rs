//! Overload-resilient serving under an adversarial storm; see
//! `at_bench::serve_storm` for the experiment body.

fn main() {
    at_bench::serve_storm::run();
}
