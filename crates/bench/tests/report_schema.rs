//! Report-schema corpus test: every committed `results/*.json`, the
//! repo-root `BENCH_*.json` perf reports, and a freshly built
//! `serve_fleet` artifact must all carry an integer `schema_version` at
//! the top level and contain only finite numbers — the class of bug where
//! a writer ships a bare array or a NaN flattens to `null` is caught here
//! for *all* writers at once, not ad hoc per artifact.

use at_bench::report::{envelope, validate_artifact, RESULTS_SCHEMA_VERSION};
use serde::Value;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate must live two levels below the repo root")
        .to_path_buf()
}

fn load(path: &Path) -> Value {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("unreadable artifact {}: {e}", path.display()));
    serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("unparseable artifact {}: {e:?}", path.display()))
}

/// Every committed artifact under `results/` conforms to the schema.
#[test]
fn committed_results_corpus_conforms() {
    let dir = repo_root().join("results");
    let mut checked = 0usize;
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing results/ corpus at {}: {e}", dir.display()));
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let value = load(&path);
        validate_artifact(&value).unwrap_or_else(|e| {
            panic!("schema violation in {}: {e}", path.display());
        });
        checked += 1;
    }
    assert!(
        checked >= 17,
        "corpus shrank: expected ≥17 committed artifacts, found {checked}"
    );
}

/// Any `BENCH_*.json` perf reports at the repo root conform too (the
/// corpus is allowed to be empty on a fresh checkout — benches write these
/// locally and in CI).
#[test]
fn bench_reports_conform() {
    let root = repo_root();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("repo root must be readable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let value = load(&path);
        validate_artifact(&value)
            .unwrap_or_else(|e| panic!("schema violation in {}: {e}", path.display()));
    }
}

/// A freshly built (small) `serve_fleet` artifact passes validation
/// before it is ever written — the writer-side guarantee, not just the
/// committed-corpus one.
#[test]
fn fresh_serve_fleet_artifact_conforms() {
    let artifact = at_bench::serve_fleet::build_artifact(2_000, 2, 7);
    let tree = envelope(at_bench::serve_fleet::artifact_value(&artifact));
    validate_artifact(&tree).expect("fresh serve_fleet artifact must conform");
    // The envelope must be a no-op: the artifact is already versioned.
    let pairs = tree.as_object().unwrap();
    assert!(pairs.iter().any(
        |(k, v)| k == "schema_version" && v.as_f64() == Some(f64::from(RESULTS_SCHEMA_VERSION))
    ));
    assert!(
        !pairs.iter().any(|(k, _)| k == "data"),
        "a versioned artifact must not get double-wrapped"
    );
}

/// Same writer-side guarantee for the chaos campaign: a freshly built
/// (small) `fleet_chaos` artifact validates, is not double-wrapped, and
/// carries zero unaccounted requests even at toy scale.
#[test]
fn fresh_fleet_chaos_artifact_conforms() {
    let artifact = at_bench::fleet_chaos::build_artifact(2_000, 2, 7);
    let tree = envelope(at_bench::fleet_chaos::artifact_value(&artifact));
    validate_artifact(&tree).expect("fresh fleet_chaos artifact must conform");
    let pairs = tree.as_object().unwrap();
    assert!(pairs.iter().any(
        |(k, v)| k == "schema_version" && v.as_f64() == Some(f64::from(RESULTS_SCHEMA_VERSION))
    ));
    assert!(pairs.iter().any(|(k, _)| k == "availability_pct"));
    assert!(pairs
        .iter()
        .any(|(k, v)| k == "requests_unaccounted" && v.as_f64() == Some(0.0)));
    assert!(
        !pairs.iter().any(|(k, _)| k == "data"),
        "a versioned artifact must not get double-wrapped"
    );
}

/// Same writer-side guarantee for the kernel micro-benchmark: a freshly
/// built (tiny) artifact validates and carries the headline speedup fields.
#[test]
fn fresh_bench_kernels_artifact_conforms() {
    let artifact = at_bench::bench_kernels::build_artifact(16, 1);
    let tree = envelope(at_bench::bench_kernels::artifact_value(&artifact));
    validate_artifact(&tree).expect("fresh bench_kernels artifact must conform");
    let pairs = tree.as_object().unwrap();
    assert!(pairs.iter().any(
        |(k, v)| k == "schema_version" && v.as_f64() == Some(f64::from(RESULTS_SCHEMA_VERSION))
    ));
    assert!(pairs.iter().any(|(k, _)| k == "headline_matmul_speedup"));
    assert!(
        !pairs.iter().any(|(k, _)| k == "data"),
        "a versioned artifact must not get double-wrapped"
    );
}

/// Same writer-side guarantee for the SDC campaign: a freshly built
/// (small) `fleet_sdc` artifact validates, is not double-wrapped, and
/// carries zero unaccounted requests and the headline coverage fields
/// even at toy scale.
#[test]
fn fresh_fleet_sdc_artifact_conforms() {
    let artifact = at_bench::fleet_sdc::build_artifact(2_000, 2, 7, 1, 32);
    let tree = envelope(at_bench::fleet_sdc::artifact_value(&artifact));
    validate_artifact(&tree).expect("fresh fleet_sdc artifact must conform");
    let pairs = tree.as_object().unwrap();
    assert!(pairs.iter().any(
        |(k, v)| k == "schema_version" && v.as_f64() == Some(f64::from(RESULTS_SCHEMA_VERSION))
    ));
    assert!(pairs.iter().any(|(k, _)| k == "availability_pct"));
    assert!(pairs.iter().any(|(k, _)| k == "fleet_detection_pct"));
    assert!(pairs.iter().any(|(k, _)| k == "kernel"));
    assert!(pairs.iter().any(|(k, _)| k == "overhead"));
    assert!(pairs
        .iter()
        .any(|(k, v)| k == "requests_unaccounted" && v.as_f64() == Some(0.0)));
    assert!(
        !pairs.iter().any(|(k, _)| k == "data"),
        "a versioned artifact must not get double-wrapped"
    );
}
