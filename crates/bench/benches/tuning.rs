//! Tuning throughput: configs/sec of the batched predictive search loop at
//! 1, 2 and N evaluation threads (N = the machine's available
//! parallelism) on Tiny LeNet, plus the empirical tuner at the same
//! thread counts — where concurrent program runs dominate and the batched
//! loop pays off most.
//!
//! Beyond the criterion timings, each thread count prints a one-line
//! throughput summary (configs/sec) and the final cache counters.

use at_bench::harness::{Prepared, Sizing};
use at_core::empirical::EmpiricalTuner;
use at_core::predict::PredictionModel;
use at_core::qos::QosMetric;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn tuning_benches(c: &mut Criterion) {
    let sizing = Sizing {
        samples: 48,
        batch: 12,
        max_iters: 300,
        convergence: 300,
    };
    let prepared = Prepared::new(at_models::BenchmarkId::LeNet, sizing);
    let profiles = prepared.profiles(at_core::knobs::KnobSet::HardwareIndependent);
    let params = prepared.params(3.0, PredictionModel::Pi1, sizing);

    let mut group = c.benchmark_group("tune-predictive");
    group.sample_size(10);
    for &threads in &thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::new("lenet", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| prepared.tune(&profiles, &params)))
        });
        let started = std::time::Instant::now();
        let r = pool.install(|| prepared.tune(&profiles, &params));
        let elapsed = started.elapsed().as_secs_f64();
        println!(
            "predictive threads={threads}: {:.0} configs/sec ({} iters in {:.2}s; cache hits={} misses={} dedup={} hit_rate={:.1}%)",
            r.iterations as f64 / elapsed.max(1e-9),
            r.iterations,
            elapsed,
            r.cache.hits,
            r.cache.misses,
            r.cache.dedup,
            100.0 * r.cache.hit_rate(),
        );
    }
    group.finish();

    // Empirical tuning: every cache miss runs the whole program, so the
    // parallel batch path dominates the wall clock.
    let reference = prepared.cal_reference();
    let etuner = EmpiricalTuner {
        graph: &prepared.bench.graph,
        registry: &prepared.registry,
        inputs: &prepared.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: prepared.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let eparams = at_core::tuner::TunerParams {
        max_iters: 60,
        convergence_window: 60,
        ..params.clone()
    };
    let mut group = c.benchmark_group("tune-empirical");
    group.sample_size(10);
    for &threads in &thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::new("lenet", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| etuner.tune(&eparams).expect("tuning")))
        });
        let started = std::time::Instant::now();
        let r = pool.install(|| etuner.tune(&eparams).expect("tuning"));
        let elapsed = started.elapsed().as_secs_f64();
        println!(
            "empirical threads={threads}: {:.1} configs/sec ({} iters in {:.2}s; cache hits={} misses={})",
            r.iterations as f64 / elapsed.max(1e-9),
            r.iterations,
            elapsed,
            r.cache.hits,
            r.cache.misses,
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = tuning_benches
}
criterion_main!(benches);
