//! Kernel-level microbenchmarks: exact vs approximated tensor operators.
//!
//! These measure the *host-CPU* effect of the algorithmic approximations
//! (the CPU side of §7.1: sampling/perforation give real time savings even
//! without FP16 hardware; software-emulated FP16 is a QoS mechanism only).

use at_tensor::ops::conv::{conv2d, Conv2dParams};
use at_tensor::ops::{avg_pool2d, matmul};
use at_tensor::{ConvApprox, PerforationDim, Precision, ReduceApprox, Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn conv_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::uniform(Shape::nchw(1, 16, 32, 32), -1.0, 1.0, &mut rng);
    let weight = Tensor::uniform(Shape::nchw(16, 16, 3, 3), -0.5, 0.5, &mut rng);
    let mut g = c.benchmark_group("conv2d_16x32x32");
    g.bench_function("exact_fp32", |b| {
        b.iter(|| {
            conv2d(
                black_box(&input),
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.bench_function("filter_sampling_50", |b| {
        b.iter(|| {
            conv2d(
                black_box(&input),
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    approx: ConvApprox::FilterSampling { k: 2, offset: 0 },
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.bench_function("perforation_row_50", |b| {
        b.iter(|| {
            conv2d(
                black_box(&input),
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    approx: ConvApprox::Perforation {
                        dim: PerforationDim::Row,
                        k: 2,
                        offset: 0,
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.bench_function("exact_fp16_semantics", |b| {
        b.iter(|| {
            conv2d(
                black_box(&input),
                &weight,
                None,
                Conv2dParams {
                    pad: (1, 1),
                    precision: Precision::Fp16,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

fn matmul_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Tensor::uniform(Shape::mat(64, 256), -1.0, 1.0, &mut rng);
    let b = Tensor::uniform(Shape::mat(256, 64), -1.0, 1.0, &mut rng);
    c.bench_function("matmul_64x256x64_fp32", |bch| {
        bch.iter(|| matmul(black_box(&a), &b, Precision::Fp32).unwrap())
    });
}

fn pool_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let input = Tensor::uniform(Shape::nchw(1, 16, 32, 32), -1.0, 1.0, &mut rng);
    let mut g = c.benchmark_group("avg_pool_4x4");
    g.bench_function("exact", |b| {
        b.iter(|| {
            avg_pool2d(
                black_box(&input),
                (4, 4),
                (0, 0),
                (4, 4),
                ReduceApprox::Exact,
                Precision::Fp32,
            )
            .unwrap()
        })
    });
    g.bench_function("sampled_25", |b| {
        b.iter(|| {
            avg_pool2d(
                black_box(&input),
                (4, 4),
                (0, 0),
                (4, 4),
                ReduceApprox::QUARTER,
                Precision::Fp32,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = conv_benches, matmul_benches, pool_benches
}
criterion_main!(benches);
