//! Pareto-set and ε-relaxed curve construction at growing candidate-set
//! sizes (the §3.5 curve-construction step).

use at_core::config::Config;
use at_core::pareto::{pareto_set, pareto_set_eps, TradeoffCurve, TradeoffPoint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cloud(n: usize) -> Vec<TradeoffPoint> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.618_033_988_75).fract();
            let y = (i as f64 * 0.414_213_562_37).fract();
            TradeoffPoint {
                qos: 80.0 + 20.0 * x,
                perf: 1.0 + 2.0 * y,
                config: Config::from_knobs(vec![]),
            }
        })
        .collect()
}

fn pareto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto_construction");
    for n in [100usize, 500, 2000] {
        let pts = cloud(n);
        g.bench_with_input(BenchmarkId::new("strict", n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_set(pts)))
        });
        g.bench_with_input(BenchmarkId::new("eps_0.5", n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_set_eps(pts, 0.5)))
        });
        g.bench_with_input(BenchmarkId::new("curve_build", n), &pts, |b, pts| {
            b.iter(|| black_box(TradeoffCurve::from_points(pts.clone())))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = pareto_benches
}
criterion_main!(benches);
