//! End-to-end inference benchmarks: exact vs best-effort approximated
//! forward passes through zoo models (the host-CPU analogue of the per-
//! invocation times the runtime phase monitors).

use at_core::knobs::{KnobId, KnobRegistry};
use at_core::Config;
use at_ir::{execute, ExecOptions};
use at_models::{build, BenchmarkId, ModelScale};
use at_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn inference_benches(c: &mut Criterion) {
    let registry = KnobRegistry::new();
    for id in [
        BenchmarkId::LeNet,
        BenchmarkId::AlexNetCifar10,
        BenchmarkId::ResNet18,
    ] {
        let bench = build(id, ModelScale::Tiny);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::uniform(bench.input_shape, -1.0, 1.0, &mut rng);
        let mut g = c.benchmark_group(format!("inference_{}", id.name()));
        g.bench_function("exact_fp32", |b| {
            b.iter(|| execute(&bench.graph, black_box(&x), &ExecOptions::baseline()).unwrap())
        });
        // A representative approximated configuration: 50% row perforation
        // on every conv (knob found by label), baseline elsewhere.
        let perf_knob = registry
            .table(at_ir::OpClass::Conv)
            .iter()
            .find(|k| k.label == "perf-50%-row-o0-fp32")
            .map(|k| k.id)
            .unwrap_or(KnobId::BASELINE);
        let mut cfg = Config::baseline(&bench.graph);
        for node in bench.graph.nodes() {
            if node.op.class() == at_ir::OpClass::Conv {
                cfg.set_knob(node.id.0 as usize, perf_knob);
            }
        }
        let choices = cfg.decode(&registry, &bench.graph);
        g.bench_function("perforated_50", |b| {
            b.iter(|| {
                execute(
                    &bench.graph,
                    black_box(&x),
                    &ExecOptions {
                        config: choices.clone(),
                        promise_seed: 0,
                    },
                )
                .unwrap()
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = inference_benches
}
criterion_main!(benches);
