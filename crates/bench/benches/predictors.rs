//! Predictor-throughput microbenchmarks: the mechanism behind Table 4.
//!
//! Π2 sums scalars; Π1 sums raw output tensors then re-applies the QoS
//! function — "Π1 calculations are significantly slower than Π2's on large
//! tensors" (§7.3). Empirical evaluation runs the whole program.

use at_core::config::Config;
use at_core::knobs::{KnobRegistry, KnobSet};
use at_core::predict::{PredictionModel, Predictor};
use at_core::profile::{collect_profiles, measure_config};
use at_core::qos::{QosMetric, QosReference};
use at_ir::{execute, ExecOptions, GraphBuilder};
use at_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup() -> (
    at_ir::Graph,
    Vec<Tensor>,
    QosReference,
    KnobRegistry,
    at_core::profile::QosProfiles,
    Vec<Config>,
) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new("bench", Shape::nchw(16, 3, 16, 16), &mut rng);
    b.conv(8, 3, (1, 1), (1, 1))
        .relu()
        .conv(8, 3, (1, 1), (1, 1))
        .relu();
    b.max_pool(2, 2).flatten().dense(10).softmax();
    let g = b.finish().unwrap();
    let mut rng2 = StdRng::seed_from_u64(6);
    let inputs: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(Shape::nchw(16, 3, 16, 16), -1.0, 1.0, &mut rng2))
        .collect();
    let mut labels = Vec::new();
    for bt in &inputs {
        let out = execute(&g, bt, &ExecOptions::baseline()).unwrap();
        let (rows, c) = out.shape().as_mat().unwrap();
        labels.push(
            (0..rows)
                .map(|r| {
                    let row = &out.data()[r * c..(r + 1) * c];
                    (0..c)
                        .max_by(|&i, &j| row[i].partial_cmp(&row[j]).unwrap())
                        .unwrap()
                })
                .collect::<Vec<usize>>(),
        );
    }
    let reference = QosReference::Labels(labels);
    let registry = KnobRegistry::new();
    let profiles = collect_profiles(
        &g,
        &registry,
        KnobSet::HardwareIndependent,
        &inputs,
        QosMetric::Accuracy,
        &reference,
        true,
        0,
    )
    .unwrap();
    let nk = registry.node_knobs(&g, KnobSet::HardwareIndependent);
    let mut rng3 = StdRng::seed_from_u64(7);
    let configs: Vec<Config> = (0..16).map(|_| Config::random(&nk, &mut rng3)).collect();
    (g, inputs, reference, registry, profiles, configs)
}

fn predictor_benches(c: &mut Criterion) {
    let (g, inputs, reference, registry, profiles, configs) = setup();
    let mut group = c.benchmark_group("qos_estimate_per_config");
    let pi1 = Predictor::new(&profiles, PredictionModel::Pi1, QosMetric::Accuracy);
    group.bench_function("pi1_predict", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % configs.len();
            black_box(pi1.predict(&configs[i], &reference))
        })
    });
    let pi2 = Predictor::new(&profiles, PredictionModel::Pi2, QosMetric::Accuracy);
    group.bench_function("pi2_predict", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % configs.len();
            black_box(pi2.predict(&configs[i], &reference))
        })
    });
    group.bench_function("empirical_measure", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % configs.len();
            black_box(
                measure_config(
                    &g,
                    &registry,
                    &configs[i],
                    &inputs,
                    QosMetric::Accuracy,
                    &reference,
                    0,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = predictor_benches
}
criterion_main!(benches);
