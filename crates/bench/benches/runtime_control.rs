//! Runtime-controller decision latency — the §5 claim that "the runtime
//! tuner can switch between configurations with negligible overhead": the
//! per-invocation monitoring + selection cost must be microseconds, far
//! below any batch execution time.

use at_core::config::Config;
use at_core::pareto::{TradeoffCurve, TradeoffPoint};
use at_core::runtime::{Policy, RuntimeTuner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn curve(n: usize) -> TradeoffCurve {
    TradeoffCurve::from_points(
        (0..n)
            .map(|i| TradeoffPoint {
                qos: 95.0 - i as f64 * (10.0 / n as f64),
                perf: 1.0 + i as f64 * (2.0 / n as f64),
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

fn runtime_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_controller");
    for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
        g.bench_function(format!("record_invocation_{policy:?}"), |b| {
            let mut t = RuntimeTuner::new(curve(50), policy, 4, 1.0, 1);
            let mut k = 0u64;
            b.iter(|| {
                // Alternate fast/slow invocations so selection logic runs.
                k += 1;
                let time = if k % 7 < 3 { 1.4 } else { 0.9 };
                black_box(t.record_invocation(time).is_some())
            })
        });
    }
    // Policy 1 selection is O(log |PS|): show it stays flat as the curve
    // grows.
    for n in [10usize, 100, 1000] {
        g.bench_function(format!("binary_search_curve_{n}"), |b| {
            let cv = curve(n);
            b.iter(|| black_box(cv.config_for_speedup(1.7).map(|p| p.perf)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = runtime_benches
}
criterion_main!(benches);
