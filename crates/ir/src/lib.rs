#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # at-ir — HPVM-style dataflow-graph IR for tensor programs
//!
//! ApproxTuner builds on HPVM/ApproxHPVM: programs are represented as
//! dataflow graphs whose nodes are predefined tensor operations
//! (convolution, matrix multiplication, ReLU, pooling, map, reduce …);
//! these operations are "the units of scheduling and approximation"
//! (§2.1). This crate provides that representation:
//!
//! * [`graph`] — the dataflow graph: nodes, parameters, validation and
//!   topological execution order.
//! * [`builder`] — a front-end builder API used by the model zoo and the
//!   image-processing pipeline (playing the role of the Keras/PyTorch →
//!   ApproxHPVM front ends).
//! * [`shapes`] — shape-inference pass: propagates the input shape through
//!   the graph so operation counts can be computed analytically.
//! * [`approx`] — the per-node approximation choice (digital knobs or a
//!   PROMISE voltage level) applied at execution time.
//! * [`exec`] — the reference executor: runs the graph on the tensor
//!   substrate, applying each node's approximation choice; also computes
//!   per-node cost descriptors for the timing/energy models.
//! * [`schedule`] — op → compute-unit mapping.

pub mod approx;
pub mod builder;
pub mod error;
pub mod exec;
pub mod graph;
pub mod passes;
pub mod schedule;
pub mod shapes;

pub use approx::ApproxChoice;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use exec::{execute, execute_all, execute_suffix, execute_with_trace, ExecOptions};
pub use graph::{Graph, NodeId, OpClass, OpKind};
pub use passes::{dead_node_elimination, fold_batchnorm, validate_choices};
pub use schedule::Schedule;
