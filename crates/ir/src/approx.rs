//! Per-node approximation choice applied at execution time.
//!
//! A *configuration* in the paper maps every tensor operation to an integer
//! knob value. `at-core` owns that integer registry; this module holds the
//! decoded mechanism the executor consumes.

use at_promise::VoltageLevel;
use at_tensor::{ConvApprox, MulApprox, Precision, ReduceApprox};
use serde::{Deserialize, Serialize};

/// Decoded approximation choice for one dataflow node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ApproxChoice {
    /// Execute on a digital unit (GPU/CPU) with the given mechanisms.
    Digital {
        /// Convolution approximation (ignored for non-conv ops).
        conv: ConvApprox,
        /// Reduction approximation (ignored for non-reduction ops).
        reduce: ReduceApprox,
        /// Numeric precision.
        precision: Precision,
        /// Multiplier-level approximation (GEMM-shaped ops: convolutions
        /// and dense layers).
        mul: MulApprox,
    },
    /// Offload to the PROMISE analog accelerator at a voltage level
    /// (convolutions and dense layers only).
    Promise(VoltageLevel),
}

impl ApproxChoice {
    /// The baseline: exact FP32 on a digital unit.
    pub const BASELINE: ApproxChoice = ApproxChoice::Digital {
        conv: ConvApprox::Exact,
        reduce: ReduceApprox::Exact,
        precision: Precision::Fp32,
        mul: MulApprox::Exact,
    };

    /// Exact computation in FP16.
    pub const FP16: ApproxChoice = ApproxChoice::Digital {
        conv: ConvApprox::Exact,
        reduce: ReduceApprox::Exact,
        precision: Precision::Fp16,
        mul: MulApprox::Exact,
    };

    /// Convenience constructor for a digital choice with an exact
    /// multiplier.
    pub fn digital(conv: ConvApprox, reduce: ReduceApprox, precision: Precision) -> ApproxChoice {
        ApproxChoice::Digital {
            conv,
            reduce,
            precision,
            mul: MulApprox::Exact,
        }
    }

    /// Convenience constructor selecting the multiplier as well.
    pub fn digital_mul(
        conv: ConvApprox,
        reduce: ReduceApprox,
        precision: Precision,
        mul: MulApprox,
    ) -> ApproxChoice {
        ApproxChoice::Digital {
            conv,
            reduce,
            precision,
            mul,
        }
    }

    /// Whether this choice performs no approximation at all.
    pub fn is_exact(&self) -> bool {
        *self == ApproxChoice::BASELINE
    }

    /// The precision of a digital choice (PROMISE has its own analog
    /// precision and reports FP32 here for storage accounting).
    pub fn precision(&self) -> Precision {
        match self {
            ApproxChoice::Digital { precision, .. } => *precision,
            ApproxChoice::Promise(_) => Precision::Fp32,
        }
    }
}

impl Default for ApproxChoice {
    fn default() -> Self {
        ApproxChoice::BASELINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_exact() {
        assert!(ApproxChoice::BASELINE.is_exact());
        assert!(!ApproxChoice::FP16.is_exact());
        assert!(!ApproxChoice::Promise(VoltageLevel::P7).is_exact());
        assert!(!ApproxChoice::digital_mul(
            ConvApprox::Exact,
            ReduceApprox::Exact,
            Precision::Fp32,
            MulApprox::Lut { bits: 8 },
        )
        .is_exact());
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(ApproxChoice::default(), ApproxChoice::BASELINE);
        assert_eq!(
            ApproxChoice::digital(ConvApprox::Exact, ReduceApprox::Exact, Precision::Fp32),
            ApproxChoice::BASELINE
        );
    }
}
