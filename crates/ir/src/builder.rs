//! Front-end builder: a fluent API for constructing CNN dataflow graphs,
//! playing the role of the paper's Keras/PyTorch → ApproxHPVM front ends.
//!
//! Weights are initialised with He-normal statistics from a caller-provided
//! RNG, so the synthetic models have realistic activation magnitudes.

use crate::graph::{Graph, NodeId, OpKind};
use crate::shapes::infer_shapes;
use at_tensor::ops::ReduceKind;
use at_tensor::{Shape, Tensor};
use rand::Rng;

/// Incrementally builds a [`Graph`], tracking the current node and its
/// inferred output shape.
pub struct GraphBuilder<'r, R: Rng> {
    graph: Graph,
    rng: &'r mut R,
    current: NodeId,
    shape: Shape,
    input_shape: Shape,
}

impl<'r, R: Rng> GraphBuilder<'r, R> {
    /// Starts a graph with an input placeholder of the given shape.
    pub fn new(name: impl Into<String>, input: Shape, rng: &'r mut R) -> Self {
        let mut graph = Graph::new(name);
        let current = graph.add_node(OpKind::Input, vec![], "input");
        GraphBuilder {
            graph,
            rng,
            current,
            shape: input,
            input_shape: input,
        }
    }

    /// The id of the most recently added node.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// The inferred output shape of the current node.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Rewinds the builder's "current" pointer to an earlier node (for
    /// residual branches).
    pub fn rewind(&mut self, to: NodeId) -> &mut Self {
        self.current = to;
        self.shape = infer_shapes(&self.graph, self.input_shape)
            .expect("builder keeps graph valid")[to.0 as usize];
        self
    }

    fn he_tensor(&mut self, shape: Shape, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(shape, std, self.rng)
    }

    /// Dense (grouped) convolution with bias; `kernel`×`kernel` filters,
    /// symmetric `pad`, `stride`.
    pub fn conv_grouped(
        &mut self,
        out_channels: usize,
        kernel: usize,
        pad: (usize, usize),
        stride: (usize, usize),
        groups: usize,
    ) -> &mut Self {
        let (_, c, _, _) = self.shape.as_nchw().expect("conv input must be NCHW");
        assert!(
            c.is_multiple_of(groups) && out_channels.is_multiple_of(groups),
            "bad groups"
        );
        let cpg = c / groups;
        let fan_in = cpg * kernel * kernel;
        let w = self.he_tensor(Shape::nchw(out_channels, cpg, kernel, kernel), fan_in);
        let weight = self.graph.add_param(w);
        let bias = Some(
            self.graph
                .add_param(Tensor::zeros(Shape::vec(out_channels))),
        );
        let label = format!("conv{}", self.graph.len());
        let node = self.graph.add_node(
            OpKind::Conv2d {
                weight,
                bias,
                pad,
                stride,
                groups,
            },
            vec![self.current],
            label,
        );
        self.current = node;
        self.shape = infer_shapes(&self.graph, self.input_shape).expect("conv shapes valid")
            [node.0 as usize];
        self
    }

    /// Dense convolution (groups = 1).
    pub fn conv(
        &mut self,
        out_channels: usize,
        kernel: usize,
        pad: (usize, usize),
        stride: (usize, usize),
    ) -> &mut Self {
        self.conv_grouped(out_channels, kernel, pad, stride, 1)
    }

    /// Depthwise convolution (groups = channels), as in MobileNet.
    pub fn depthwise(
        &mut self,
        kernel: usize,
        pad: (usize, usize),
        stride: (usize, usize),
    ) -> &mut Self {
        let (_, c, _, _) = self.shape.as_nchw().expect("depthwise input must be NCHW");
        self.conv_grouped(c, kernel, pad, stride, c)
    }

    /// Inference batch normalisation with identity-calibrated statistics
    /// (slightly perturbed so the op is not a no-op).
    pub fn batchnorm(&mut self) -> &mut Self {
        let (_, c, _, _) = self.shape.as_nchw().expect("batchnorm input must be NCHW");
        let gamma = Tensor::from_vec(
            Shape::vec(c),
            (0..c)
                .map(|_| 1.0 + self.rng.gen_range(-0.05..0.05))
                .collect(),
        )
        .expect("shape matches");
        let beta = Tensor::from_vec(
            Shape::vec(c),
            (0..c).map(|_| self.rng.gen_range(-0.02..0.02f32)).collect(),
        )
        .expect("shape matches");
        let mean = Tensor::zeros(Shape::vec(c));
        let var = Tensor::full(Shape::vec(c), 1.0);
        let g = self.graph.add_param(gamma);
        let b = self.graph.add_param(beta);
        let m = self.graph.add_param(mean);
        let v = self.graph.add_param(var);
        let label = format!("bn{}", self.graph.len());
        let node = self.graph.add_node(
            OpKind::BatchNorm {
                gamma: g,
                beta: b,
                mean: m,
                var: v,
                eps: 1e-5,
            },
            vec![self.current],
            label,
        );
        self.current = node;
        self
    }

    /// ReLU.
    pub fn relu(&mut self) -> &mut Self {
        self.unary(OpKind::Relu, "relu")
    }

    /// ReLU6 (MobileNet).
    pub fn relu6(&mut self) -> &mut Self {
        self.unary(OpKind::ClippedRelu { lo: 0.0, hi: 6.0 }, "relu6")
    }

    /// Tanh.
    pub fn tanh(&mut self) -> &mut Self {
        self.unary(OpKind::Tanh, "tanh")
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self) -> &mut Self {
        self.unary(OpKind::Abs, "abs")
    }

    /// Convolution with *fixed* (caller-provided) weights — used by the
    /// image-processing pipeline (Gaussian blur, Sobel operators).
    pub fn conv_fixed(
        &mut self,
        weight: Tensor,
        pad: (usize, usize),
        stride: (usize, usize),
    ) -> &mut Self {
        let weight = self.graph.add_param(weight);
        let label = format!("conv{}", self.graph.len());
        let node = self.graph.add_node(
            OpKind::Conv2d {
                weight,
                bias: None,
                pad,
                stride,
                groups: 1,
            },
            vec![self.current],
            label,
        );
        self.current = node;
        self.shape = infer_shapes(&self.graph, self.input_shape).expect("conv shapes valid")
            [node.0 as usize];
        self
    }

    fn unary(&mut self, op: OpKind, name: &str) -> &mut Self {
        let label = format!("{name}{}", self.graph.len());
        let node = self.graph.add_node(op, vec![self.current], label);
        self.current = node;
        self
    }

    /// Max pooling with square window and stride.
    pub fn max_pool(&mut self, window: usize, stride: usize) -> &mut Self {
        let label = format!("maxpool{}", self.graph.len());
        let node = self.graph.add_node(
            OpKind::MaxPool2d {
                window: (window, window),
                pad: (0, 0),
                stride: (stride, stride),
            },
            vec![self.current],
            label,
        );
        self.current = node;
        self.shape = infer_shapes(&self.graph, self.input_shape).expect("pool shapes valid")
            [node.0 as usize];
        self
    }

    /// Average pooling with square window and stride (a reduction op).
    pub fn avg_pool(&mut self, window: usize, stride: usize) -> &mut Self {
        let label = format!("avgpool{}", self.graph.len());
        let node = self.graph.add_node(
            OpKind::AvgPool2d {
                window: (window, window),
                pad: (0, 0),
                stride: (stride, stride),
            },
            vec![self.current],
            label,
        );
        self.current = node;
        self.shape = infer_shapes(&self.graph, self.input_shape).expect("pool shapes valid")
            [node.0 as usize];
        self
    }

    /// Flatten NCHW to `[N, C·H·W]`.
    pub fn flatten(&mut self) -> &mut Self {
        let node = self
            .graph
            .add_node(OpKind::Flatten, vec![self.current], "flatten");
        self.current = node;
        self.shape = infer_shapes(&self.graph, self.input_shape).expect("flatten shapes valid")
            [node.0 as usize];
        self
    }

    /// Fully-connected layer with bias.
    pub fn dense(&mut self, out: usize) -> &mut Self {
        let (_, k) = self.shape.as_mat().expect("dense input must be flattened");
        let w = self.he_tensor(Shape::mat(k, out), k);
        let weight = self.graph.add_param(w);
        let bias = Some(self.graph.add_param(Tensor::zeros(Shape::vec(out))));
        let label = format!("fc{}", self.graph.len());
        let node = self
            .graph
            .add_node(OpKind::Dense { weight, bias }, vec![self.current], label);
        self.current = node;
        self.shape = Shape::mat(self.shape.as_mat().unwrap().0, out);
        self
    }

    /// Residual addition of the current node and `other`.
    pub fn add_from(&mut self, other: NodeId) -> &mut Self {
        let label = format!("add{}", self.graph.len());
        let node = self
            .graph
            .add_node(OpKind::Add, vec![self.current, other], label);
        self.current = node;
        self
    }

    /// Reduction along an axis.
    pub fn reduce(&mut self, axis: usize, kind: ReduceKind) -> &mut Self {
        let label = format!("reduce{}", self.graph.len());
        let node = self
            .graph
            .add_node(OpKind::Reduce { axis, kind }, vec![self.current], label);
        self.current = node;
        self.shape = infer_shapes(&self.graph, self.input_shape).expect("reduce shapes valid")
            [node.0 as usize];
        self
    }

    /// Terminal softmax.
    pub fn softmax(&mut self) -> &mut Self {
        self.unary(OpKind::Softmax, "softmax")
    }

    /// Finalises and validates the graph.
    pub fn finish(self) -> Graph {
        self.graph
            .validate()
            .expect("builder produces valid graphs");
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn residual_block_builds_and_validates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new("res", Shape::nchw(1, 4, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1)).relu();
        let skip = b.current();
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .conv(4, 3, (1, 1), (1, 1));
        b.add_from(skip).relu();
        b.flatten().dense(10).softmax();
        let g = b.finish();
        assert!(g.validate().is_ok());
        assert!(g.len() > 9);
    }

    #[test]
    fn depthwise_builds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new("dw", Shape::nchw(1, 8, 8, 8), &mut rng);
        b.depthwise(3, (1, 1), (1, 1))
            .batchnorm()
            .relu6()
            .conv(16, 1, (0, 0), (1, 1));
        let g = b.finish();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn shape_tracking() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new("s", Shape::nchw(1, 3, 32, 32), &mut rng);
        b.conv(8, 3, (1, 1), (2, 2));
        assert_eq!(b.shape(), Shape::nchw(1, 8, 16, 16));
        b.max_pool(2, 2);
        assert_eq!(b.shape(), Shape::nchw(1, 8, 8, 8));
        b.flatten();
        assert_eq!(b.shape(), Shape::mat(1, 8 * 64));
    }
}
