//! Front-end builder: a fluent API for constructing CNN dataflow graphs,
//! playing the role of the paper's Keras/PyTorch → ApproxHPVM front ends.
//!
//! Weights are initialised with He-normal statistics from a caller-provided
//! RNG, so the synthetic models have realistic activation magnitudes.
//!
//! The builder never panics on misuse. The first failing step (e.g. a dense
//! layer on an un-flattened activation, or a grouped convolution whose
//! channel count is not divisible by `groups`) *poisons* the builder: the
//! error is recorded, every later step becomes a no-op, and [`finish`]
//! reports it as a typed [`GraphError`]. This keeps fluent chains readable
//! while making malformed model definitions a recoverable condition for
//! the serving runtime.
//!
//! [`finish`]: GraphBuilder::finish

use crate::error::GraphError;
use crate::graph::{Graph, NodeId, OpKind};
use crate::shapes::infer_shapes;
use at_tensor::ops::ReduceKind;
use at_tensor::{Shape, Tensor};
use rand::Rng;

/// Incrementally builds a [`Graph`], tracking the current node and its
/// inferred output shape.
pub struct GraphBuilder<'r, R: Rng> {
    graph: Graph,
    rng: &'r mut R,
    current: NodeId,
    shape: Shape,
    input_shape: Shape,
    err: Option<GraphError>,
}

impl<'r, R: Rng> GraphBuilder<'r, R> {
    /// Starts a graph with an input placeholder of the given shape.
    pub fn new(name: impl Into<String>, input: Shape, rng: &'r mut R) -> Self {
        let mut graph = Graph::new(name);
        let current = graph.add_node(OpKind::Input, vec![], "input");
        GraphBuilder {
            graph,
            rng,
            current,
            shape: input,
            input_shape: input,
            err: None,
        }
    }

    /// The id of the most recently added node.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// The inferred output shape of the current node.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The first error recorded by a failed step, if any.
    pub fn error(&self) -> Option<&GraphError> {
        self.err.as_ref()
    }

    /// Runs a fallible step unless the builder is already poisoned; on
    /// failure records the error tagged with the step name.
    fn try_step(
        &mut self,
        op: &'static str,
        f: impl FnOnce(&mut Self) -> Result<(), GraphError>,
    ) -> &mut Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = f(self) {
            self.err = Some(GraphError::Builder {
                op,
                detail: e.to_string(),
            });
        }
        self
    }

    /// Re-infers the current shape after appending `node`.
    fn refresh_shape(&mut self, node: NodeId) -> Result<(), GraphError> {
        let shapes = infer_shapes(&self.graph, self.input_shape)?;
        self.shape = *shapes
            .get(node.0 as usize)
            .ok_or_else(|| GraphError::Internal {
                detail: format!("no inferred shape for node {}", node.0),
            })?;
        self.current = node;
        Ok(())
    }

    /// Rewinds the builder's "current" pointer to an earlier node (for
    /// residual branches).
    pub fn rewind(&mut self, to: NodeId) -> &mut Self {
        self.try_step("rewind", |b| b.refresh_shape(to))
    }

    fn he_tensor(&mut self, shape: Shape, fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(shape, std, self.rng)
    }

    /// Dense (grouped) convolution with bias; `kernel`×`kernel` filters,
    /// symmetric `pad`, `stride`.
    pub fn conv_grouped(
        &mut self,
        out_channels: usize,
        kernel: usize,
        pad: (usize, usize),
        stride: (usize, usize),
        groups: usize,
    ) -> &mut Self {
        self.try_step("conv", |b| {
            let (_, c, _, _) = b.shape.as_nchw()?;
            if groups == 0 || !c.is_multiple_of(groups) || !out_channels.is_multiple_of(groups) {
                return Err(GraphError::Builder {
                    op: "conv",
                    detail: format!(
                        "groups {groups} does not divide channels {c} and filters {out_channels}"
                    ),
                });
            }
            let cpg = c / groups;
            let fan_in = cpg * kernel * kernel;
            let w = b.he_tensor(Shape::nchw(out_channels, cpg, kernel, kernel), fan_in);
            let weight = b.graph.add_param(w);
            let bias = Some(b.graph.add_param(Tensor::zeros(Shape::vec(out_channels))));
            let label = format!("conv{}", b.graph.len());
            let node = b.graph.add_node(
                OpKind::Conv2d {
                    weight,
                    bias,
                    pad,
                    stride,
                    groups,
                },
                vec![b.current],
                label,
            );
            b.refresh_shape(node)
        })
    }

    /// Dense convolution (groups = 1).
    pub fn conv(
        &mut self,
        out_channels: usize,
        kernel: usize,
        pad: (usize, usize),
        stride: (usize, usize),
    ) -> &mut Self {
        self.conv_grouped(out_channels, kernel, pad, stride, 1)
    }

    /// Depthwise convolution (groups = channels), as in MobileNet.
    pub fn depthwise(
        &mut self,
        kernel: usize,
        pad: (usize, usize),
        stride: (usize, usize),
    ) -> &mut Self {
        let c = match self.shape.as_nchw() {
            Ok((_, c, _, _)) => c,
            Err(e) => {
                if self.err.is_none() {
                    self.err = Some(GraphError::Builder {
                        op: "depthwise",
                        detail: e.to_string(),
                    });
                }
                return self;
            }
        };
        self.conv_grouped(c, kernel, pad, stride, c)
    }

    /// Inference batch normalisation with identity-calibrated statistics
    /// (slightly perturbed so the op is not a no-op).
    pub fn batchnorm(&mut self) -> &mut Self {
        self.try_step("batchnorm", |b| {
            let (_, c, _, _) = b.shape.as_nchw()?;
            let gamma = Tensor::from_vec(
                Shape::vec(c),
                (0..c).map(|_| 1.0 + b.rng.gen_range(-0.05..0.05)).collect(),
            )?;
            let beta = Tensor::from_vec(
                Shape::vec(c),
                (0..c).map(|_| b.rng.gen_range(-0.02..0.02f32)).collect(),
            )?;
            let mean = Tensor::zeros(Shape::vec(c));
            let var = Tensor::full(Shape::vec(c), 1.0);
            let g = b.graph.add_param(gamma);
            let bb = b.graph.add_param(beta);
            let m = b.graph.add_param(mean);
            let v = b.graph.add_param(var);
            let label = format!("bn{}", b.graph.len());
            let node = b.graph.add_node(
                OpKind::BatchNorm {
                    gamma: g,
                    beta: bb,
                    mean: m,
                    var: v,
                    eps: 1e-5,
                },
                vec![b.current],
                label,
            );
            b.current = node;
            Ok(())
        })
    }

    /// ReLU.
    pub fn relu(&mut self) -> &mut Self {
        self.unary(OpKind::Relu, "relu")
    }

    /// ReLU6 (MobileNet).
    pub fn relu6(&mut self) -> &mut Self {
        self.unary(OpKind::ClippedRelu { lo: 0.0, hi: 6.0 }, "relu6")
    }

    /// Tanh.
    pub fn tanh(&mut self) -> &mut Self {
        self.unary(OpKind::Tanh, "tanh")
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self) -> &mut Self {
        self.unary(OpKind::Abs, "abs")
    }

    /// Convolution with *fixed* (caller-provided) weights — used by the
    /// image-processing pipeline (Gaussian blur, Sobel operators).
    pub fn conv_fixed(
        &mut self,
        weight: Tensor,
        pad: (usize, usize),
        stride: (usize, usize),
    ) -> &mut Self {
        self.try_step("conv_fixed", |b| {
            let weight = b.graph.add_param(weight);
            let label = format!("conv{}", b.graph.len());
            let node = b.graph.add_node(
                OpKind::Conv2d {
                    weight,
                    bias: None,
                    pad,
                    stride,
                    groups: 1,
                },
                vec![b.current],
                label,
            );
            b.refresh_shape(node)
        })
    }

    fn unary(&mut self, op: OpKind, name: &str) -> &mut Self {
        if self.err.is_some() {
            return self;
        }
        let label = format!("{name}{}", self.graph.len());
        let node = self.graph.add_node(op, vec![self.current], label);
        self.current = node;
        self
    }

    /// Max pooling with square window and stride.
    pub fn max_pool(&mut self, window: usize, stride: usize) -> &mut Self {
        self.try_step("max_pool", |b| {
            let label = format!("maxpool{}", b.graph.len());
            let node = b.graph.add_node(
                OpKind::MaxPool2d {
                    window: (window, window),
                    pad: (0, 0),
                    stride: (stride, stride),
                },
                vec![b.current],
                label,
            );
            b.refresh_shape(node)
        })
    }

    /// Average pooling with square window and stride (a reduction op).
    pub fn avg_pool(&mut self, window: usize, stride: usize) -> &mut Self {
        self.try_step("avg_pool", |b| {
            let label = format!("avgpool{}", b.graph.len());
            let node = b.graph.add_node(
                OpKind::AvgPool2d {
                    window: (window, window),
                    pad: (0, 0),
                    stride: (stride, stride),
                },
                vec![b.current],
                label,
            );
            b.refresh_shape(node)
        })
    }

    /// Flatten NCHW to `[N, C·H·W]`.
    pub fn flatten(&mut self) -> &mut Self {
        self.try_step("flatten", |b| {
            let node = b
                .graph
                .add_node(OpKind::Flatten, vec![b.current], "flatten");
            b.refresh_shape(node)
        })
    }

    /// Fully-connected layer with bias.
    pub fn dense(&mut self, out: usize) -> &mut Self {
        self.try_step("dense", |b| {
            let (m, k) = b.shape.as_mat()?;
            let w = b.he_tensor(Shape::mat(k, out), k);
            let weight = b.graph.add_param(w);
            let bias = Some(b.graph.add_param(Tensor::zeros(Shape::vec(out))));
            let label = format!("fc{}", b.graph.len());
            let node = b
                .graph
                .add_node(OpKind::Dense { weight, bias }, vec![b.current], label);
            b.current = node;
            b.shape = Shape::mat(m, out);
            Ok(())
        })
    }

    /// Residual addition of the current node and `other`.
    pub fn add_from(&mut self, other: NodeId) -> &mut Self {
        if self.err.is_some() {
            return self;
        }
        let label = format!("add{}", self.graph.len());
        let node = self
            .graph
            .add_node(OpKind::Add, vec![self.current, other], label);
        self.current = node;
        self
    }

    /// Reduction along an axis.
    pub fn reduce(&mut self, axis: usize, kind: ReduceKind) -> &mut Self {
        self.try_step("reduce", |b| {
            let label = format!("reduce{}", b.graph.len());
            let node = b
                .graph
                .add_node(OpKind::Reduce { axis, kind }, vec![b.current], label);
            b.refresh_shape(node)
        })
    }

    /// Terminal softmax.
    pub fn softmax(&mut self) -> &mut Self {
        self.unary(OpKind::Softmax, "softmax")
    }

    /// Finalises and validates the graph. Returns the first error recorded
    /// by a failed step, or a validation error for a structurally invalid
    /// result.
    pub fn finish(self) -> Result<Graph, GraphError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn residual_block_builds_and_validates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new("res", Shape::nchw(1, 4, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1)).relu();
        let skip = b.current();
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .conv(4, 3, (1, 1), (1, 1));
        b.add_from(skip).relu();
        b.flatten().dense(10).softmax();
        let g = b.finish().unwrap();
        assert!(g.validate().is_ok());
        assert!(g.len() > 9);
    }

    #[test]
    fn depthwise_builds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new("dw", Shape::nchw(1, 8, 8, 8), &mut rng);
        b.depthwise(3, (1, 1), (1, 1))
            .batchnorm()
            .relu6()
            .conv(16, 1, (0, 0), (1, 1));
        let g = b.finish().unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn shape_tracking() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new("s", Shape::nchw(1, 3, 32, 32), &mut rng);
        b.conv(8, 3, (1, 1), (2, 2));
        assert_eq!(b.shape(), Shape::nchw(1, 8, 16, 16));
        b.max_pool(2, 2);
        assert_eq!(b.shape(), Shape::nchw(1, 8, 8, 8));
        b.flatten();
        assert_eq!(b.shape(), Shape::mat(1, 8 * 64));
    }

    #[test]
    fn bad_groups_poisons_builder() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = GraphBuilder::new("bad", Shape::nchw(1, 3, 8, 8), &mut rng);
        b.conv_grouped(8, 3, (1, 1), (1, 1), 2); // 3 channels, 2 groups
        assert!(b.error().is_some());
        match b.finish() {
            Err(GraphError::Builder { op, .. }) => assert_eq!(op, "conv"),
            other => panic!("expected builder error, got {other:?}"),
        }
    }

    #[test]
    fn dense_without_flatten_poisons_builder() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new("bad", Shape::nchw(1, 3, 8, 8), &mut rng);
        // Dense on an NCHW activation is a shape misuse, and the poisoned
        // builder must ignore every later step instead of panicking.
        b.dense(10).relu().softmax();
        assert!(matches!(b.finish(), Err(GraphError::Builder { .. })));
    }

    #[test]
    fn first_error_wins() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = GraphBuilder::new("bad", Shape::nchw(1, 3, 8, 8), &mut rng);
        b.dense(10); // first failure: dense on NCHW
        b.conv_grouped(8, 3, (1, 1), (1, 1), 2); // would fail too
        match b.finish() {
            Err(GraphError::Builder { op, .. }) => assert_eq!(op, "dense"),
            other => panic!("expected dense failure, got {other:?}"),
        }
    }
}
