//! Typed graph-level errors for the `at-ir` execution path.
//!
//! Historically the builder, validator and executor panicked on malformed
//! graphs (`assert!`, `expect`). A serving runtime cannot afford that: a
//! single corrupt artifact would abort the whole process instead of being
//! contained by the circuit breaker. Every shape/validity check on the
//! execution path now produces a [`GraphError`] that propagates to the
//! caller.
//!
//! `GraphError` converts losslessly from [`TensorError`] (kernel-level
//! failures wrap into [`GraphError::Tensor`]) and back (graph-level
//! variants render into `TensorError::Graph`), so existing `at-core` code
//! that works in terms of `TensorError` keeps composing with `?`.

use at_tensor::TensorError;
use std::fmt;

/// Errors raised while building, validating or executing a dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A kernel-level tensor failure surfaced during graph execution.
    Tensor(TensorError),
    /// The graph wiring is invalid: dangling node ids, non-topological
    /// inputs, wrong arity, out-of-range parameter references.
    InvalidStructure {
        /// Where the check failed (pass or op name).
        op: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An operation that needs at least one node was given an empty graph.
    EmptyGraph,
    /// The builder was driven into an invalid state; the first failure is
    /// recorded and every later call is a no-op until `finish()` reports it.
    Builder {
        /// The method that first failed.
        op: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// A cached-output vector handed to suffix re-execution does not cover
    /// the graph.
    CacheMismatch {
        /// Node count of the graph.
        expected: usize,
        /// Length of the supplied cache.
        got: usize,
    },
    /// A parameter tensor contains NaN or infinite values — executing it
    /// would silently poison every downstream activation.
    NonFiniteParam {
        /// Name of the owning node, if known.
        node: String,
        /// How many elements were non-finite.
        count: usize,
    },
    /// An internal executor invariant was violated (e.g. a node's input was
    /// not computed despite topological order). Indicates a bug or a graph
    /// that bypassed validation.
    Internal {
        /// Description for logs.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Tensor(e) => write!(f, "{e}"),
            GraphError::InvalidStructure { op, detail } => {
                write!(f, "invalid graph structure in {op}: {detail}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::Builder { op, detail } => {
                write!(f, "graph builder failed in {op}: {detail}")
            }
            GraphError::CacheMismatch { expected, got } => {
                write!(f, "node cache covers {got} nodes, graph has {expected}")
            }
            GraphError::NonFiniteParam { node, count } => {
                write!(f, "{count} non-finite parameter values in node {node}")
            }
            GraphError::Internal { detail } => write!(f, "internal executor error: {detail}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> GraphError {
        GraphError::Tensor(e)
    }
}

/// Lossy-but-faithful conversion for callers that work in `TensorError`
/// terms: wrapped tensor errors unwrap to the original (so transient-fault
/// classification in the supervisor keeps working); graph-level variants
/// render into [`TensorError::Graph`].
impl From<GraphError> for TensorError {
    fn from(e: GraphError) -> TensorError {
        match e {
            GraphError::Tensor(inner) => inner,
            GraphError::EmptyGraph => TensorError::EmptyGraph,
            other => TensorError::Graph {
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip_preserves_variant() {
        let t = TensorError::Transient {
            detail: "flaky".into(),
        };
        let g = GraphError::from(t.clone());
        assert_eq!(TensorError::from(g), t);
    }

    #[test]
    fn graph_variants_render_into_tensor_graph() {
        let g = GraphError::NonFiniteParam {
            node: "conv1".into(),
            count: 3,
        };
        match TensorError::from(g) {
            TensorError::Graph { detail } => assert!(detail.contains("conv1")),
            other => panic!("expected Graph variant, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph_maps_to_empty_graph() {
        assert_eq!(
            TensorError::from(GraphError::EmptyGraph),
            TensorError::EmptyGraph
        );
    }
}
