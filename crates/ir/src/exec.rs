//! Reference executor: runs a dataflow graph on the tensor substrate,
//! applying each node's approximation choice, and computes the per-node
//! analytical cost descriptors consumed by the timing/energy models.
//!
//! Besides plain execution, the module supports *suffix re-execution*
//! ([`execute_suffix`]): given the cached node outputs of a previous run,
//! only the nodes from a given position onward are recomputed. ApproxTuner's
//! profile collection approximates one operation at a time (Algorithm 1,
//! lines 12–15), so re-running only the perturbed node's suffix makes
//! profile collection dramatically cheaper without changing its result.

use crate::approx::ApproxChoice;
use crate::error::GraphError;
use crate::graph::{Graph, Node, NodeId, OpClass, OpKind};
use crate::shapes::infer_shapes;
use at_promise::{promise_conv2d, promise_matmul};
use at_tensor::cost::{self, OpCounts};
use at_tensor::ops::{self, conv::Conv2dParams};
use at_tensor::{MulApprox, Precision, ReduceApprox, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options controlling one execution of a graph.
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Approximation choice per node (indexed by node id). Nodes beyond the
    /// vector's length run at the baseline. Use `vec![]` for a fully exact
    /// run.
    pub config: Vec<ApproxChoice>,
    /// Seed for the PROMISE noise source. Executions with equal seeds and
    /// configs are bit-identical.
    pub promise_seed: u64,
}

impl ExecOptions {
    /// The exact FP32 baseline execution.
    pub fn baseline() -> ExecOptions {
        ExecOptions::default()
    }

    /// The exact (knob-free) counterpart of these options: the same PROMISE
    /// seed with every approximation choice cleared. This is the shadow
    /// re-execution path of the runtime QoS guard — a canaried request runs
    /// once approximated and once through this variant, and the difference
    /// is the true per-request QoS loss.
    pub fn exact_variant(&self) -> ExecOptions {
        ExecOptions {
            config: Vec::new(),
            promise_seed: self.promise_seed,
        }
    }

    /// The choice for a given node.
    pub fn choice(&self, id: NodeId) -> ApproxChoice {
        self.config
            .get(id.0 as usize)
            .copied()
            .unwrap_or(ApproxChoice::BASELINE)
    }
}

/// Evaluates a single node given access to its input tensors.
fn eval_node<'a>(
    graph: &Graph,
    node: &Node,
    arg: impl Fn(usize) -> Result<&'a Tensor, GraphError>,
    choice: ApproxChoice,
    promise_seed: u64,
    program_input: &Tensor,
) -> Result<Tensor, GraphError> {
    let (conv_approx, reduce_approx, precision, mul_approx) = match choice {
        ApproxChoice::Digital {
            conv,
            reduce,
            precision,
            mul,
        } => (conv, reduce, precision, mul),
        ApproxChoice::Promise(_) => (
            at_tensor::ConvApprox::Exact,
            ReduceApprox::Exact,
            Precision::Fp32,
            MulApprox::Exact,
        ),
    };
    let out = match &node.op {
        OpKind::Input => program_input.clone(),
        OpKind::Conv2d {
            weight,
            bias,
            pad,
            stride,
            groups,
        } => {
            let w = graph.param(*weight);
            let b = bias.map(|p| graph.param(p));
            if let ApproxChoice::Promise(level) = choice {
                // PROMISE path (dense convolutions only; grouped convs fall
                // back to the digital exact kernel).
                if *groups == 1 {
                    let mut rng = StdRng::seed_from_u64(promise_seed ^ ((node.id.0 as u64) << 17));
                    promise_conv2d(arg(0)?, w, b, *pad, *stride, level, &mut rng)?
                } else {
                    ops::conv2d(
                        arg(0)?,
                        w,
                        b,
                        Conv2dParams {
                            pad: *pad,
                            stride: *stride,
                            groups: *groups,
                            ..Default::default()
                        },
                    )?
                }
            } else {
                ops::conv2d(
                    arg(0)?,
                    w,
                    b,
                    Conv2dParams {
                        pad: *pad,
                        stride: *stride,
                        groups: *groups,
                        approx: conv_approx,
                        precision,
                        mul: mul_approx,
                    },
                )?
            }
        }
        OpKind::Dense { weight, bias } => {
            let w = graph.param(*weight);
            if let ApproxChoice::Promise(level) = choice {
                let mut rng = StdRng::seed_from_u64(promise_seed ^ ((node.id.0 as u64) << 17));
                let out = promise_matmul(arg(0)?, w, level, &mut rng)?;
                match bias {
                    Some(b) => ops::bias_add_rows(&out, graph.param(*b), precision)?,
                    None => out,
                }
            } else {
                // Fused GEMM+bias epilogue; bit-identical to the unfused
                // matmul → bias_add_rows pair at every precision.
                let b = bias.map(|p| graph.param(p));
                ops::matmul_ex(arg(0)?, w, b, precision, mul_approx)?
            }
        }
        OpKind::Relu => ops::relu(arg(0)?, precision)?,
        OpKind::ClippedRelu { lo, hi } => ops::clipped_relu(arg(0)?, *lo, *hi, precision)?,
        OpKind::Tanh => ops::tanh_op(arg(0)?, precision)?,
        OpKind::Abs => ops::map_unary(arg(0)?, at_tensor::ops::UnaryOp::Abs, precision)?,
        OpKind::MaxPool2d {
            window,
            pad,
            stride,
        } => ops::max_pool2d(arg(0)?, *window, *pad, *stride, precision)?,
        OpKind::AvgPool2d {
            window,
            pad,
            stride,
        } => ops::avg_pool2d(arg(0)?, *window, *pad, *stride, reduce_approx, precision)?,
        OpKind::BatchNorm {
            gamma,
            beta,
            mean,
            var,
            eps,
        } => ops::batchnorm2d(
            arg(0)?,
            graph.param(*gamma),
            graph.param(*beta),
            graph.param(*mean),
            graph.param(*var),
            *eps,
            precision,
        )?,
        OpKind::Softmax => ops::softmax_rows(arg(0)?, precision)?,
        OpKind::Add => {
            let sum = arg(0)?.add(arg(1)?)?;
            if precision == Precision::Fp16 {
                sum.to_f16()
            } else {
                sum
            }
        }
        OpKind::Flatten => {
            let t = arg(0)?;
            let dims = t.shape();
            let d = dims.dims();
            t.reshape(Shape::mat(d[0], d[1..].iter().product()))?
        }
        OpKind::Reduce { axis, kind } => {
            ops::reduce(arg(0)?, *axis, *kind, reduce_approx, precision)?
        }
    };
    Ok(out)
}

/// Looks up input `i` of `node` in the per-node output cache, as a typed
/// error rather than a panic when the invariant "topological order
/// guarantees inputs are computed" is violated by a corrupt graph.
fn fetch<'a>(
    outputs: &'a [Option<Tensor>],
    node: &Node,
    i: usize,
) -> Result<&'a Tensor, GraphError> {
    let id = node.inputs.get(i).ok_or_else(|| GraphError::Internal {
        detail: format!("node {} has no input #{i}", node.id.0),
    })?;
    outputs
        .get(id.0 as usize)
        .and_then(|o| o.as_ref())
        .ok_or_else(|| GraphError::Internal {
            detail: format!("input {} of node {} not computed", id.0, node.id.0),
        })
}

/// Executes the graph on `input`, returning the output tensor of the final
/// node.
pub fn execute(graph: &Graph, input: &Tensor, opts: &ExecOptions) -> Result<Tensor, GraphError> {
    let (out, _) = execute_with_trace(graph, input, opts)?;
    Ok(out)
}

/// Conv→ReLU fusion plan for one execution: `plan[r] == Some(c)` means ReLU
/// node `r` is satisfied by evaluating Conv2d node `c` with the fused
/// conv+bias+ReLU kernel and moving the tensor into `r`'s slot.
///
/// Fusion is bit-invisible (the fused kernel applies `max(0.0)` in its
/// epilogue exactly where the standalone FP32 ReLU would), so it is only
/// planned when that holds: the ReLU's sole input is a digitally-executed
/// Conv2d consumed by nobody else, the ReLU itself runs digitally at FP32,
/// and the conv is not the program output.
fn relu_fusion_plan(graph: &Graph, opts: &ExecOptions) -> Vec<Option<NodeId>> {
    let mut consumers = vec![0usize; graph.len()];
    for node in graph.nodes() {
        for inp in &node.inputs {
            consumers[inp.0 as usize] += 1;
        }
    }
    let out_id = graph.output();
    let mut plan = vec![None; graph.len()];
    for node in graph.nodes() {
        if !matches!(node.op, OpKind::Relu) {
            continue;
        }
        let Some(&cid) = node.inputs.first() else {
            continue;
        };
        if !matches!(graph.node(cid).op, OpKind::Conv2d { .. })
            || consumers[cid.0 as usize] != 1
            || Some(cid) == out_id
        {
            continue;
        }
        let relu_fp32 = matches!(
            opts.choice(node.id),
            ApproxChoice::Digital {
                precision: Precision::Fp32,
                ..
            }
        );
        if relu_fp32 && matches!(opts.choice(cid), ApproxChoice::Digital { .. }) {
            plan[node.id.0 as usize] = Some(cid);
        }
    }
    plan
}

/// Evaluates a Conv2d node with the fused conv+bias+ReLU kernel (digital
/// choices only; callers guarantee this via [`relu_fusion_plan`]).
fn eval_conv_fused<'a>(
    graph: &Graph,
    node: &Node,
    arg: impl Fn(usize) -> Result<&'a Tensor, GraphError>,
    choice: ApproxChoice,
) -> Result<Tensor, GraphError> {
    let OpKind::Conv2d {
        weight,
        bias,
        pad,
        stride,
        groups,
    } = &node.op
    else {
        return Err(GraphError::Internal {
            detail: format!("fused-ReLU plan points at non-conv node {}", node.id.0),
        });
    };
    let ApproxChoice::Digital {
        conv,
        precision,
        mul,
        ..
    } = choice
    else {
        return Err(GraphError::Internal {
            detail: format!("fused-ReLU plan on non-digital node {}", node.id.0),
        });
    };
    let w = graph.param(*weight);
    let b = bias.map(|p| graph.param(p));
    Ok(ops::conv2d_fused_relu(
        arg(0)?,
        w,
        b,
        Conv2dParams {
            pad: *pad,
            stride: *stride,
            groups: *groups,
            approx: conv,
            precision,
            mul,
        },
    )?)
}

/// Executes the graph and additionally returns per-node wall-clock kernel
/// times in seconds (host measurements; used for the empirical CPU results
/// and for tuning-time accounting).
pub fn execute_with_trace(
    graph: &Graph,
    input: &Tensor,
    opts: &ExecOptions,
) -> Result<(Tensor, Vec<f64>), GraphError> {
    graph.validate()?;
    let plan = relu_fusion_plan(graph, opts);
    let mut fused_conv = vec![false; graph.len()];
    for cid in plan.iter().flatten() {
        fused_conv[cid.0 as usize] = true;
    }
    let mut outputs: Vec<Option<Tensor>> = vec![None; graph.len()];
    let mut times = vec![0.0f64; graph.len()];
    for node in graph.nodes() {
        let started = std::time::Instant::now();
        let idx = node.id.0 as usize;
        let out = if let Some(cid) = plan[idx] {
            // ReLU was already applied by the conv's fused epilogue: this
            // node reduces to moving the tensor (the conv has no other
            // consumer, so its slot can be vacated).
            outputs[cid.0 as usize]
                .take()
                .ok_or_else(|| GraphError::Internal {
                    detail: format!("fused conv {} not computed before its ReLU", cid.0),
                })?
        } else if fused_conv[idx] {
            eval_conv_fused(
                graph,
                node,
                |i| fetch(&outputs, node, i),
                opts.choice(node.id),
            )?
        } else {
            eval_node(
                graph,
                node,
                |i| fetch(&outputs, node, i),
                opts.choice(node.id),
                opts.promise_seed,
                input,
            )?
        };
        times[idx] = started.elapsed().as_secs_f64();
        outputs[idx] = Some(out);
    }
    let out_id = graph.output().ok_or(GraphError::EmptyGraph)?;
    let out = outputs[out_id.0 as usize]
        .take()
        .ok_or_else(|| GraphError::Internal {
            detail: "output node was not computed".into(),
        })?;
    Ok((out, times))
}

/// Executes the graph and returns *all* node outputs — the cache consumed by
/// [`execute_suffix`].
pub fn execute_all(
    graph: &Graph,
    input: &Tensor,
    opts: &ExecOptions,
) -> Result<Vec<Tensor>, GraphError> {
    graph.validate()?;
    let mut outputs: Vec<Option<Tensor>> = vec![None; graph.len()];
    for node in graph.nodes() {
        let out = eval_node(
            graph,
            node,
            |i| fetch(&outputs, node, i),
            opts.choice(node.id),
            opts.promise_seed,
            input,
        )?;
        outputs[node.id.0 as usize] = Some(out);
    }
    outputs
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.ok_or_else(|| GraphError::Internal {
                detail: format!("node {i} was not computed"),
            })
        })
        .collect()
}

/// Recomputes only the nodes at positions `from..` of the graph, reading
/// earlier nodes' outputs from `cache` (a previous [`execute_all`] result).
/// Returns the program output.
///
/// Used by profile collection: approximating a single op leaves its prefix
/// unchanged, so only the suffix needs re-execution.
pub fn execute_suffix(
    graph: &Graph,
    input: &Tensor,
    cache: &[Tensor],
    from: NodeId,
    opts: &ExecOptions,
) -> Result<Tensor, GraphError> {
    graph.validate()?;
    if cache.len() != graph.len() {
        return Err(GraphError::CacheMismatch {
            expected: graph.len(),
            got: cache.len(),
        });
    }
    let start = from.0 as usize;
    let mut outputs: Vec<Option<Tensor>> = vec![None; graph.len()];
    for node in &graph.nodes()[start..] {
        let out = eval_node(
            graph,
            node,
            |i| {
                let id = node.inputs.get(i).ok_or_else(|| GraphError::Internal {
                    detail: format!("node {} has no input #{i}", node.id.0),
                })?;
                let idx = id.0 as usize;
                if idx < start {
                    Ok(&cache[idx])
                } else {
                    outputs[idx].as_ref().ok_or_else(|| GraphError::Internal {
                        detail: format!("suffix input {idx} not computed in order"),
                    })
                }
            },
            opts.choice(node.id),
            opts.promise_seed,
            input,
        )?;
        outputs[node.id.0 as usize] = Some(out);
    }
    let out_id = graph.output().ok_or(GraphError::EmptyGraph)?;
    let idx = out_id.0 as usize;
    Ok(if idx < start {
        cache[idx].clone()
    } else {
        outputs[idx].take().ok_or_else(|| GraphError::Internal {
            detail: "suffix output was not computed".into(),
        })?
    })
}

/// Baseline analytical cost of every node (paper §3.4), given the program
/// input shape. Indexed by node id; the `Input` node costs zero.
pub fn node_costs(graph: &Graph, input: Shape) -> Result<Vec<OpCounts>, GraphError> {
    let shapes = infer_shapes(graph, input)?;
    let mut counts = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let in_shape = |i: usize| shapes[node.inputs[i].0 as usize];
        let c = match &node.op {
            OpKind::Input => OpCounts::ZERO,
            OpKind::Conv2d {
                weight,
                pad,
                stride,
                ..
            } => cost::conv2d_counts(in_shape(0), graph.param(*weight).shape(), *pad, *stride),
            OpKind::Dense { weight, .. } => {
                let (m, k) = in_shape(0).as_mat()?;
                let (_, n) = graph.param(*weight).shape().as_mat()?;
                cost::matmul_counts(m, k, n)
            }
            OpKind::Relu | OpKind::ClippedRelu { .. } | OpKind::Abs => {
                cost::map_counts(in_shape(0).volume(), 1.0)
            }
            OpKind::Tanh => cost::map_counts(in_shape(0).volume(), 8.0),
            OpKind::MaxPool2d {
                window,
                pad,
                stride,
            }
            | OpKind::AvgPool2d {
                window,
                pad,
                stride,
            } => cost::pool2d_counts(in_shape(0), *window, *pad, *stride),
            OpKind::BatchNorm { .. } => cost::batchnorm_counts(in_shape(0)),
            OpKind::Softmax => {
                let (m, n) = in_shape(0).as_mat()?;
                cost::softmax_counts(m, n)
            }
            OpKind::Add => cost::map_counts(in_shape(0).volume(), 1.0),
            OpKind::Flatten => OpCounts::ZERO,
            OpKind::Reduce { axis, .. } => {
                let s = in_shape(0);
                let len = s.dim(*axis)?;
                cost::reduce_counts(s.volume() / len.max(1), len)
            }
        };
        counts.push(c);
    }
    Ok(counts)
}

/// Total baseline cost of the program (sum over nodes).
pub fn total_cost(graph: &Graph, input: Shape) -> Result<OpCounts, GraphError> {
    Ok(node_costs(graph, input)?
        .into_iter()
        .fold(OpCounts::ZERO, OpCounts::plus))
}

/// Returns true when `choice` is legal for the node's op class (e.g.
/// PROMISE only accepts convolutions and dense layers; perforation only
/// applies to convolutions).
pub fn choice_is_valid(graph: &Graph, id: NodeId, choice: ApproxChoice) -> bool {
    let class = graph.node(id).op.class();
    match choice {
        ApproxChoice::Promise(_) => matches!(class, OpClass::Conv | OpClass::Dense),
        ApproxChoice::Digital {
            conv, reduce, mul, ..
        } => {
            let conv_ok = conv == at_tensor::ConvApprox::Exact || class == OpClass::Conv;
            let reduce_ok = reduce == ReduceApprox::Exact || class == OpClass::Reduction;
            let mul_ok = mul == MulApprox::Exact || matches!(class, OpClass::Conv | OpClass::Dense);
            let not_input = class != OpClass::Input || choice == ApproxChoice::BASELINE;
            conv_ok && reduce_ok && mul_ok && not_input
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use at_tensor::ConvApprox;

    fn tiny_cnn() -> (Graph, Tensor) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = GraphBuilder::new("tiny", Shape::nchw(2, 3, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .max_pool(2, 2)
            .flatten()
            .dense(10)
            .softmax();
        let g = b.finish().unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let x = Tensor::uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0, &mut rng2);
        (g, x)
    }

    #[test]
    fn baseline_execution_produces_probabilities() {
        let (g, x) = tiny_cnn();
        let out = execute(&g, &x, &ExecOptions::baseline()).unwrap();
        assert_eq!(out.shape(), Shape::mat(2, 10));
        for r in 0..2 {
            let s: f32 = out.data()[r * 10..(r + 1) * 10].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn approximation_changes_output() {
        let (g, x) = tiny_cnn();
        let base = execute(&g, &x, &ExecOptions::baseline()).unwrap();
        let mut config = vec![ApproxChoice::BASELINE; g.len()];
        // Node 1 is the conv.
        config[1] = ApproxChoice::digital(
            ConvApprox::FilterSampling { k: 2, offset: 0 },
            ReduceApprox::Exact,
            Precision::Fp32,
        );
        let approx = execute(
            &g,
            &x,
            &ExecOptions {
                config,
                promise_seed: 0,
            },
        )
        .unwrap();
        assert!(base.mse(&approx).unwrap() > 0.0);
    }

    #[test]
    fn promise_execution_deterministic_per_seed() {
        let (g, x) = tiny_cnn();
        let mut config = vec![ApproxChoice::BASELINE; g.len()];
        config[1] = ApproxChoice::Promise(at_promise::VoltageLevel::P4);
        let o1 = execute(
            &g,
            &x,
            &ExecOptions {
                config: config.clone(),
                promise_seed: 42,
            },
        )
        .unwrap();
        let o2 = execute(
            &g,
            &x,
            &ExecOptions {
                config: config.clone(),
                promise_seed: 42,
            },
        )
        .unwrap();
        let o3 = execute(
            &g,
            &x,
            &ExecOptions {
                config,
                promise_seed: 43,
            },
        )
        .unwrap();
        assert_eq!(o1.data(), o2.data());
        assert!(o1.mse(&o3).unwrap() > 0.0);
    }

    #[test]
    fn costs_positive_for_compute_nodes() {
        let (g, _) = tiny_cnn();
        let costs = node_costs(&g, Shape::nchw(2, 3, 8, 8)).unwrap();
        assert_eq!(costs[0], OpCounts::ZERO); // input
        assert!(costs[1].compute > 0.0); // conv
        let total = total_cost(&g, Shape::nchw(2, 3, 8, 8)).unwrap();
        assert!(total.compute >= costs[1].compute);
    }

    #[test]
    fn validity_rules() {
        let (g, _) = tiny_cnn();
        // Node 1 = conv, node 2 = relu, node 5 = dense.
        let perf = ApproxChoice::digital(
            ConvApprox::Perforation {
                dim: at_tensor::PerforationDim::Row,
                k: 2,
                offset: 0,
            },
            ReduceApprox::Exact,
            Precision::Fp32,
        );
        assert!(choice_is_valid(&g, NodeId(1), perf));
        assert!(!choice_is_valid(&g, NodeId(2), perf));
        assert!(choice_is_valid(
            &g,
            NodeId(5),
            ApproxChoice::Promise(at_promise::VoltageLevel::P1)
        ));
        assert!(!choice_is_valid(
            &g,
            NodeId(2),
            ApproxChoice::Promise(at_promise::VoltageLevel::P1)
        ));
        assert!(choice_is_valid(&g, NodeId(2), ApproxChoice::FP16));
    }

    #[test]
    fn conv_relu_fusion_is_bit_invisible() {
        let (g, x) = tiny_cnn();
        // execute() fuses conv→relu; execute_all() never does. The program
        // output must stay bitwise identical under every digital conv knob.
        let conv_choices = [
            ApproxChoice::BASELINE,
            ApproxChoice::FP16,
            ApproxChoice::digital(
                ConvApprox::Perforation {
                    dim: at_tensor::PerforationDim::Col,
                    k: 2,
                    offset: 1,
                },
                ReduceApprox::Exact,
                Precision::Fp32,
            ),
            ApproxChoice::digital_mul(
                ConvApprox::Exact,
                ReduceApprox::Exact,
                Precision::Fp32,
                MulApprox::Lut { bits: 8 },
            ),
        ];
        for choice in conv_choices {
            let mut config = vec![ApproxChoice::BASELINE; g.len()];
            config[1] = choice; // node 1 is the conv
            let opts = ExecOptions {
                config,
                promise_seed: 0,
            };
            let fused = execute(&g, &x, &opts).unwrap();
            let unfused = execute_all(&g, &x, &opts).unwrap();
            let last = unfused.last().unwrap();
            assert_eq!(
                fused.data(),
                last.data(),
                "fusion changed bits under {choice:?}"
            );
        }
    }

    #[test]
    fn fusion_skipped_when_relu_not_fp32() {
        let (g, x) = tiny_cnn();
        // FP16 ReLU re-quantises its input; the fused kernel must not be
        // used there, and the unfused path must agree with execute_all.
        let mut config = vec![ApproxChoice::BASELINE; g.len()];
        config[2] = ApproxChoice::FP16; // node 2 is the relu
        let opts = ExecOptions {
            config,
            promise_seed: 0,
        };
        let out = execute(&g, &x, &opts).unwrap();
        let all = execute_all(&g, &x, &opts).unwrap();
        assert_eq!(out.data(), all.last().unwrap().data());
    }

    #[test]
    fn lut_multiplier_executes_on_conv_and_dense() {
        let (g, x) = tiny_cnn();
        let base = execute(&g, &x, &ExecOptions::baseline()).unwrap();
        let lut = ApproxChoice::digital_mul(
            ConvApprox::Exact,
            ReduceApprox::Exact,
            Precision::Fp32,
            MulApprox::Lut { bits: 4 },
        );
        for node in [1usize, 5] {
            // conv, dense
            let mut config = vec![ApproxChoice::BASELINE; g.len()];
            config[node] = lut;
            let opts = ExecOptions {
                config,
                promise_seed: 0,
            };
            let out = execute(&g, &x, &opts).unwrap();
            assert!(
                base.mse(&out).unwrap() > 0.0,
                "LUT multiplier on node {node} should perturb the output"
            );
            // Deterministic across runs (integer accumulation).
            let again = execute(&g, &x, &opts).unwrap();
            assert_eq!(out.data(), again.data());
        }
    }

    #[test]
    fn lut_multiplier_validity_follows_op_class() {
        let (g, _) = tiny_cnn();
        let lut = ApproxChoice::digital_mul(
            ConvApprox::Exact,
            ReduceApprox::Exact,
            Precision::Fp32,
            MulApprox::Lut { bits: 6 },
        );
        assert!(choice_is_valid(&g, NodeId(1), lut)); // conv
        assert!(choice_is_valid(&g, NodeId(5), lut)); // dense
        assert!(!choice_is_valid(&g, NodeId(2), lut)); // relu
        assert!(!choice_is_valid(&g, NodeId(3), lut)); // pool
    }

    #[test]
    fn trace_times_populated() {
        let (g, x) = tiny_cnn();
        let (_, times) = execute_with_trace(&g, &x, &ExecOptions::baseline()).unwrap();
        assert_eq!(times.len(), g.len());
        assert!(times.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn suffix_matches_full_execution() {
        let (g, x) = tiny_cnn();
        let cache = execute_all(&g, &x, &ExecOptions::baseline()).unwrap();
        // Perturb node 1 (conv) and compare suffix vs full execution.
        let mut config = vec![ApproxChoice::BASELINE; g.len()];
        config[1] = ApproxChoice::FP16;
        let opts = ExecOptions {
            config,
            promise_seed: 0,
        };
        let full = execute(&g, &x, &opts).unwrap();
        let suffix = execute_suffix(&g, &x, &cache, NodeId(1), &opts).unwrap();
        assert_eq!(full.data(), suffix.data());
    }

    #[test]
    fn suffix_from_last_node() {
        let (g, x) = tiny_cnn();
        let cache = execute_all(&g, &x, &ExecOptions::baseline()).unwrap();
        let last = g.output().unwrap();
        let out = execute_suffix(&g, &x, &cache, last, &ExecOptions::baseline()).unwrap();
        assert_eq!(out.data(), cache[last.0 as usize].data());
    }
}
