//! Schedules: the mapping of tensor operations to compute units.
//!
//! "a schedule is a mapping of tensor operations to compute units in the
//! target system" (§2.1). At development time everything targets a digital
//! unit; install-time tuning may remap convolutions and dense layers to
//! PROMISE.

use crate::graph::{Graph, NodeId, OpClass};
use at_hw::ComputeUnitKind;
use serde::{Deserialize, Serialize};

/// A mapping from graph nodes to compute units.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    units: Vec<ComputeUnitKind>,
}

impl Schedule {
    /// All ops on a single digital unit.
    pub fn uniform(graph: &Graph, unit: ComputeUnitKind) -> Schedule {
        assert_ne!(
            unit,
            ComputeUnitKind::Promise,
            "PROMISE only accepts convolutions and dense layers; use `uniform` \
             with a digital unit and remap eligible ops with `assign`"
        );
        Schedule {
            units: vec![unit; graph.len()],
        }
    }

    /// The unit for a node.
    pub fn unit(&self, id: NodeId) -> ComputeUnitKind {
        self.units[id.0 as usize]
    }

    /// Reassigns one node, enforcing PROMISE eligibility.
    pub fn assign(&mut self, graph: &Graph, id: NodeId, unit: ComputeUnitKind) -> bool {
        if unit == ComputeUnitKind::Promise {
            let class = graph.node(id).op.class();
            if !matches!(class, OpClass::Conv | OpClass::Dense) {
                return false;
            }
        }
        self.units[id.0 as usize] = unit;
        true
    }

    /// Number of nodes mapped to each unit kind.
    pub fn histogram(&self) -> [(ComputeUnitKind, usize); 3] {
        let mut gpu = 0;
        let mut cpu = 0;
        let mut promise = 0;
        for u in &self.units {
            match u {
                ComputeUnitKind::Gpu => gpu += 1,
                ComputeUnitKind::Cpu => cpu += 1,
                ComputeUnitKind::Promise => promise += 1,
            }
        }
        [
            (ComputeUnitKind::Gpu, gpu),
            (ComputeUnitKind::Cpu, cpu),
            (ComputeUnitKind::Promise, promise),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use at_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g() -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1))
            .relu()
            .flatten()
            .dense(10)
            .softmax();
        b.finish().unwrap()
    }

    #[test]
    fn uniform_gpu() {
        let graph = g();
        let s = Schedule::uniform(&graph, ComputeUnitKind::Gpu);
        assert_eq!(s.unit(NodeId(1)), ComputeUnitKind::Gpu);
        assert_eq!(s.histogram()[0].1, graph.len());
    }

    #[test]
    fn promise_eligibility() {
        let graph = g();
        let mut s = Schedule::uniform(&graph, ComputeUnitKind::Gpu);
        assert!(s.assign(&graph, NodeId(1), ComputeUnitKind::Promise)); // conv
        assert!(!s.assign(&graph, NodeId(2), ComputeUnitKind::Promise)); // relu
        assert!(s.assign(&graph, NodeId(4), ComputeUnitKind::Promise)); // dense
        assert_eq!(s.histogram()[2].1, 2);
    }

    #[test]
    #[should_panic(expected = "PROMISE")]
    fn uniform_promise_panics() {
        let graph = g();
        let _ = Schedule::uniform(&graph, ComputeUnitKind::Promise);
    }
}
