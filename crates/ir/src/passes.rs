//! Graph transformation passes.
//!
//! ApproxHPVM compiles through a retargetable pass pipeline; we provide the
//! two passes the evaluation depends on plus a correctness-preserving
//! clean-up:
//!
//! * [`fold_batchnorm`] — folds inference batch-norm into the preceding
//!   convolution's weights and bias (a standard deployment optimisation;
//!   it also *reduces the number of tunable ops*, changing the search
//!   space — which is why it is a pass, not a default).
//! * [`dead_node_elimination`] — removes nodes whose results are never
//!   consumed (can arise after folding).
//! * [`validate_choices`] — checks a per-node approximation assignment
//!   against each node's op class (the lowering-time legality check).

use crate::approx::ApproxChoice;
use crate::error::GraphError;
use crate::exec::choice_is_valid;
use crate::graph::{Graph, Node, NodeId, OpKind};
use at_tensor::TensorError;

/// Statistics of a pass application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Nodes removed by the pass.
    pub removed: usize,
    /// Nodes rewritten in place.
    pub rewritten: usize,
}

/// Folds `Conv2d → BatchNorm` pairs: with per-channel affine
/// `y = a·x + b` (a = γ/√(σ²+ε), b = β − μ·a), the convolution weights are
/// scaled by `a` per output channel and the bias becomes `a·bias + b`.
/// The BatchNorm node is replaced by an identity-like pass-through (an
/// `Abs`-free ReLU cannot express identity, so the node is rewired away and
/// cleaned by [`dead_node_elimination`]).
pub fn fold_batchnorm(graph: &mut Graph) -> Result<PassReport, GraphError> {
    graph.validate()?;
    let mut report = PassReport::default();

    // Find BN nodes whose single input is a Conv2d consumed only by them.
    let mut consumers = vec![0usize; graph.len()];
    for n in graph.nodes() {
        for &i in &n.inputs {
            consumers[i.0 as usize] += 1;
        }
    }
    let candidates: Vec<(NodeId, NodeId)> = graph
        .nodes()
        .iter()
        .filter_map(|n| match n.op {
            OpKind::BatchNorm { .. } => {
                let src = n.inputs[0];
                match graph.node(src).op {
                    OpKind::Conv2d { bias: Some(_), .. } if consumers[src.0 as usize] == 1 => {
                        Some((src, n.id))
                    }
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();

    for (conv_id, bn_id) in candidates {
        // Candidate selection guarantees these patterns match; a defensive
        // `continue` (rather than a panic) keeps a malformed pairing inert.
        let (weight, bias) = match graph.node(conv_id).op {
            OpKind::Conv2d {
                weight,
                bias: Some(bias),
                ..
            } => (weight, bias),
            _ => continue,
        };
        let (gamma, beta, mean, var, eps) = match graph.node(bn_id).op {
            OpKind::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                eps,
            } => (gamma, beta, mean, var, eps),
            _ => continue,
        };
        // Per-channel affine coefficients.
        let k = graph.param(gamma).len();
        let a: Vec<f32> = (0..k)
            .map(|i| graph.param(gamma).data()[i] / (graph.param(var).data()[i] + eps).sqrt())
            .collect();
        let b: Vec<f32> = (0..k)
            .map(|i| graph.param(beta).data()[i] - graph.param(mean).data()[i] * a[i])
            .collect();
        // Scale weights per output channel.
        {
            let w = graph.param_mut(weight);
            let (kk, c, r, s) = w.shape().as_nchw()?;
            debug_assert_eq!(kk, k);
            let vol = c * r * s;
            let data = w.data_mut();
            for (oc, &ai) in a.iter().enumerate() {
                for v in &mut data[oc * vol..(oc + 1) * vol] {
                    *v *= ai;
                }
            }
        }
        // Fold the bias.
        {
            let bt = graph.param_mut(bias);
            for (i, v) in bt.data_mut().iter_mut().enumerate() {
                *v = a[i] * *v + b[i];
            }
        }
        // Rewire every consumer of the BN node to the conv node.
        graph.rewire(bn_id, conv_id);
        report.rewritten += 1;
    }

    report.removed = dead_node_elimination(graph)?.removed;
    Ok(report)
}

/// Removes nodes that are not the program output and have no consumers.
/// Iterates to a fixed point and compacts node ids.
pub fn dead_node_elimination(graph: &mut Graph) -> Result<PassReport, GraphError> {
    let mut report = PassReport::default();
    loop {
        let out = match graph.output() {
            Some(o) => o,
            None => return Ok(report),
        };
        let mut live = vec![false; graph.len()];
        live[out.0 as usize] = true;
        for n in graph.nodes().iter().rev() {
            if live[n.id.0 as usize] {
                for &i in &n.inputs {
                    live[i.0 as usize] = true;
                }
            }
        }
        let dead: Vec<NodeId> = graph
            .nodes()
            .iter()
            .filter(|n| !live[n.id.0 as usize])
            .map(|n| n.id)
            .collect();
        if dead.is_empty() {
            return Ok(report);
        }
        report.removed += dead.len();
        graph.remove_nodes(&dead)?;
    }
}

/// Checks a per-node approximation assignment for class legality.
pub fn validate_choices(graph: &Graph, choices: &[ApproxChoice]) -> Result<(), GraphError> {
    for node in graph.nodes() {
        let choice = choices
            .get(node.id.0 as usize)
            .copied()
            .unwrap_or(ApproxChoice::BASELINE);
        if !choice_is_valid(graph, node.id, choice) {
            return Err(GraphError::Tensor(TensorError::InvalidKnob {
                op: "validate_choices",
                detail: format!(
                    "node {} ({}) cannot take {:?}",
                    node.id.0,
                    node.op.name(),
                    choice
                ),
            }));
        }
    }
    Ok(())
}

/// Extends [`Graph`] with the rewiring/removal primitives the passes use.
impl Graph {
    /// Redirects every consumer of `from` to read `to` instead.
    pub fn rewire(&mut self, from: NodeId, to: NodeId) {
        for n in self.nodes_mut() {
            for i in &mut n.inputs {
                if *i == from {
                    *i = to;
                }
            }
        }
    }

    /// Removes the given nodes and compacts ids (inputs are remapped).
    /// Fails if a surviving node references a removed one.
    pub fn remove_nodes(&mut self, dead: &[NodeId]) -> Result<(), GraphError> {
        let len = self.len();
        let mut remap: Vec<Option<u32>> = vec![None; len];
        let mut next = 0u32;
        for (i, slot) in remap.iter_mut().enumerate() {
            if !dead.iter().any(|d| d.0 as usize == i) {
                *slot = Some(next);
                next += 1;
            }
        }
        // Check references.
        for n in self.nodes() {
            if remap[n.id.0 as usize].is_none() {
                continue;
            }
            for &inp in &n.inputs {
                if remap[inp.0 as usize].is_none() {
                    return Err(GraphError::InvalidStructure {
                        op: "remove_nodes",
                        detail: format!("live node {} references removed node {}", n.id.0, inp.0),
                    });
                }
            }
        }
        self.retain_and_remap(|id| remap[id.0 as usize].map(NodeId))
    }
}

// (The retain/remap primitive lives on Graph in graph.rs to keep field
// privacy; re-exported nodes_mut likewise.)
#[allow(unused)]
fn _doc(_: &Node) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::{execute, ExecOptions};
    use at_tensor::{Shape, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bn_cnn() -> Graph {
        let mut rng = StdRng::seed_from_u64(41);
        let mut b = GraphBuilder::new("bn", Shape::nchw(2, 3, 8, 8), &mut rng);
        b.conv(4, 3, (1, 1), (1, 1)).batchnorm().relu();
        b.conv(4, 3, (1, 1), (1, 1)).batchnorm().relu();
        b.flatten().dense(5).softmax();
        b.finish().unwrap()
    }

    #[test]
    fn batchnorm_folding_preserves_semantics() {
        let graph = bn_cnn();
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0, &mut rng);
        let before = execute(&graph, &x, &ExecOptions::baseline()).unwrap();
        let mut folded = graph.clone();
        let report = fold_batchnorm(&mut folded).unwrap();
        assert_eq!(report.rewritten, 2, "both BN nodes fold");
        assert_eq!(report.removed, 2, "both BN nodes removed");
        folded.validate().unwrap();
        let after = execute(&folded, &x, &ExecOptions::baseline()).unwrap();
        let mse = before.mse(&after).unwrap();
        assert!(mse < 1e-10, "folding changed semantics: mse {mse}");
        assert_eq!(folded.len(), graph.len() - 2);
    }

    #[test]
    fn folding_reduces_tunable_ops() {
        let graph = bn_cnn();
        let before = graph.tunable_nodes().len();
        let mut folded = graph;
        fold_batchnorm(&mut folded).unwrap();
        assert_eq!(folded.tunable_nodes().len(), before - 2);
    }

    #[test]
    fn dead_node_elimination_noop_on_clean_graph() {
        let mut graph = bn_cnn();
        let n = graph.len();
        let r = dead_node_elimination(&mut graph).unwrap();
        assert_eq!(r.removed, 0);
        assert_eq!(graph.len(), n);
    }

    #[test]
    fn validate_choices_rejects_illegal() {
        let graph = bn_cnn();
        let mut choices = vec![ApproxChoice::BASELINE; graph.len()];
        // Node 2 is the first batchnorm — PROMISE is illegal there.
        choices[2] = ApproxChoice::Promise(at_promise::VoltageLevel::P4);
        assert!(validate_choices(&graph, &choices).is_err());
        choices[2] = ApproxChoice::FP16;
        assert!(validate_choices(&graph, &choices).is_ok());
    }
}
