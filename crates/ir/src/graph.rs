//! The dataflow-graph program representation.

use crate::error::GraphError;
use at_tensor::ops::ReduceKind;
use at_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a parameter tensor held by the graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ParamId(pub u32);

/// The predefined tensor operations of ApproxHPVM that this reproduction
/// supports (§2.1 and Sharif et al. [57, Table 1]).
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Graph input placeholder (exactly one per graph).
    Input,
    /// 2-D convolution with weights `[K, C/groups, R, S]` and optional bias.
    Conv2d {
        /// Weight parameter.
        weight: ParamId,
        /// Optional bias parameter `[K]`.
        bias: Option<ParamId>,
        /// Symmetric padding.
        pad: (usize, usize),
        /// Stride.
        stride: (usize, usize),
        /// Channel groups (1 = dense, C = depthwise).
        groups: usize,
    },
    /// Fully-connected layer: `x · Wᵀ…` expressed as matmul with weight
    /// `[in, out]` plus optional bias `[out]`.
    Dense {
        /// Weight parameter `[in, out]`.
        weight: ParamId,
        /// Optional bias `[out]`.
        bias: Option<ParamId>,
    },
    /// ReLU activation.
    Relu,
    /// Clipped ReLU (`clamp(x, lo, hi)`).
    ClippedRelu {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Tanh activation.
    Tanh,
    /// Elementwise absolute value (used by the image-processing pipeline's
    /// L1 gradient magnitude).
    Abs,
    /// Max pooling.
    MaxPool2d {
        /// Pooling window.
        window: (usize, usize),
        /// Symmetric padding.
        pad: (usize, usize),
        /// Stride.
        stride: (usize, usize),
    },
    /// Average pooling (a *reduction* in the paper's taxonomy: reduction
    /// sampling applies).
    AvgPool2d {
        /// Pooling window.
        window: (usize, usize),
        /// Symmetric padding.
        pad: (usize, usize),
        /// Stride.
        stride: (usize, usize),
    },
    /// Inference batch normalisation.
    BatchNorm {
        /// Scale parameter.
        gamma: ParamId,
        /// Shift parameter.
        beta: ParamId,
        /// Running mean.
        mean: ParamId,
        /// Running variance.
        var: ParamId,
        /// Numerical epsilon.
        eps: f32,
    },
    /// Row-wise softmax (the terminal op of the CNNs).
    Softmax,
    /// Elementwise addition of two inputs (residual connections).
    Add,
    /// Flatten NCHW → `[N, C·H·W]`.
    Flatten,
    /// Reduction along an axis (reduction sampling applies).
    Reduce {
        /// Reduced axis.
        axis: usize,
        /// Reduction operator.
        kind: ReduceKind,
    },
}

/// Coarse classification of an op for knob assignment (§2.3: convolutions
/// get 63 knobs, reductions 8, everything else 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpClass {
    /// Convolutions (and dense layers, which PROMISE also accelerates).
    Conv,
    /// Dense / matrix-multiplication layers.
    Dense,
    /// Reductions (average pooling, reduce).
    Reduction,
    /// Ops with only a precision knob.
    Other,
    /// The input placeholder: never approximated.
    Input,
}

impl OpKind {
    /// The op's class.
    pub fn class(&self) -> OpClass {
        match self {
            OpKind::Input => OpClass::Input,
            OpKind::Conv2d { .. } => OpClass::Conv,
            OpKind::Dense { .. } => OpClass::Dense,
            OpKind::AvgPool2d { .. } | OpKind::Reduce { .. } => OpClass::Reduction,
            _ => OpClass::Other,
        }
    }

    /// Short mnemonic used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::Conv2d { .. } => "conv2d",
            OpKind::Dense { .. } => "dense",
            OpKind::Relu => "relu",
            OpKind::ClippedRelu { .. } => "clipped_relu",
            OpKind::Tanh => "tanh",
            OpKind::Abs => "abs",
            OpKind::MaxPool2d { .. } => "max_pool2d",
            OpKind::AvgPool2d { .. } => "avg_pool2d",
            OpKind::BatchNorm { .. } => "batchnorm",
            OpKind::Softmax => "softmax",
            OpKind::Add => "add",
            OpKind::Flatten => "flatten",
            OpKind::Reduce { .. } => "reduce",
        }
    }
}

/// One node of the dataflow graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// The operation.
    pub op: OpKind,
    /// Dataflow predecessors (tensor-valued inputs), in argument order.
    pub inputs: Vec<NodeId>,
    /// Optional human-readable label (e.g. "conv1").
    pub label: String,
}

/// A dataflow-graph tensor program.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    params: Vec<Tensor>,
    name: String,
}

impl Graph {
    /// An empty graph with a program name.
    pub fn new(name: impl Into<String>) -> Graph {
        Graph {
            nodes: Vec::new(),
            params: Vec::new(),
            name: name.into(),
        }
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a parameter tensor, returning its id.
    pub fn add_param(&mut self, t: Tensor) -> ParamId {
        self.params.push(t);
        ParamId(self.params.len() as u32 - 1)
    }

    /// A parameter by id.
    pub fn param(&self, id: ParamId) -> &Tensor {
        &self.params[id.0 as usize]
    }

    /// All parameter tensors, in [`ParamId`] order (weight-integrity
    /// fingerprints hash these).
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Mutable parameter access (used by the pruning study).
    pub fn param_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0 as usize]
    }

    /// Adds a node with the given op and inputs, returning its id.
    pub fn add_node(
        &mut self,
        op: OpKind,
        inputs: Vec<NodeId>,
        label: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            op,
            inputs,
            label: label.into(),
        });
        id
    }

    /// All nodes in insertion (= topological, enforced by validation) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The final node (program output), if any.
    pub fn output(&self) -> Option<NodeId> {
        self.nodes.last().map(|n| n.id)
    }

    /// Ids of nodes that can carry approximation knobs (everything except
    /// the input placeholder). These are the paper's "tensor operations in
    /// the program" over which configurations are defined.
    pub fn tunable_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.op.class() != OpClass::Input)
            .map(|n| n.id)
            .collect()
    }

    /// Counts nodes per class.
    pub fn class_histogram(&self) -> Vec<(OpClass, usize)> {
        let mut counts: Vec<(OpClass, usize)> = Vec::new();
        for n in &self.nodes {
            let c = n.op.class();
            if let Some(e) = counts.iter_mut().find(|(k, _)| *k == c) {
                e.1 += 1;
            } else {
                counts.push((c, 1));
            }
        }
        counts
    }

    /// Structural validation:
    /// * exactly one `Input` node, and it is node 0;
    /// * node inputs reference earlier nodes only (topological order);
    /// * arity matches the op (Add takes 2 inputs, others 1, Input 0);
    /// * parameter ids are in range.
    pub fn validate(&self) -> Result<(), GraphError> {
        let fail = |detail: String| GraphError::InvalidStructure {
            op: "graph::validate",
            detail,
        };
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        if self.nodes[0].op != OpKind::Input {
            return Err(fail("node 0 must be the Input placeholder".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.0 as usize != i {
                return Err(fail(format!("node id {:?} at position {i}", n.id)));
            }
            let arity = match n.op {
                OpKind::Input => 0,
                OpKind::Add => 2,
                _ => 1,
            };
            if n.inputs.len() != arity {
                return Err(fail(format!(
                    "node {} ({}) has {} inputs, expected {arity}",
                    i,
                    n.op.name(),
                    n.inputs.len()
                )));
            }
            if matches!(n.op, OpKind::Input) && i != 0 {
                return Err(fail(format!("extra Input node at position {i}")));
            }
            for &inp in &n.inputs {
                if inp.0 as usize >= i {
                    return Err(fail(format!(
                        "node {i} references non-earlier node {:?}",
                        inp
                    )));
                }
            }
            let check_param = |p: ParamId| -> Result<(), GraphError> {
                if (p.0 as usize) < self.params.len() {
                    Ok(())
                } else {
                    Err(fail(format!("node {i} references missing param {:?}", p)))
                }
            };
            match n.op {
                OpKind::Conv2d { weight, bias, .. } | OpKind::Dense { weight, bias } => {
                    check_param(weight)?;
                    if let Some(b) = bias {
                        check_param(b)?;
                    }
                }
                OpKind::BatchNorm {
                    gamma,
                    beta,
                    mean,
                    var,
                    ..
                } => {
                    check_param(gamma)?;
                    check_param(beta)?;
                    check_param(mean)?;
                    check_param(var)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Total number of parameter elements (model size).
    pub fn param_count(&self) -> usize {
        self.params.iter().map(|t| t.len()).sum()
    }

    /// Checks every parameter tensor referenced by a node for NaN/infinite
    /// values. A corrupt artifact (truncated download, bit-flipped weights)
    /// would otherwise poison activations silently; the serving runtime
    /// runs this once at registration rather than per request.
    pub fn validate_params_finite(&self) -> Result<(), GraphError> {
        let check = |node: &Node, p: ParamId| -> Result<(), GraphError> {
            let count = self
                .param(p)
                .data()
                .iter()
                .filter(|x| !x.is_finite())
                .count();
            if count == 0 {
                Ok(())
            } else {
                Err(GraphError::NonFiniteParam {
                    node: node.label.clone(),
                    count,
                })
            }
        };
        for n in &self.nodes {
            match n.op {
                OpKind::Conv2d { weight, bias, .. } | OpKind::Dense { weight, bias } => {
                    check(n, weight)?;
                    if let Some(b) = bias {
                        check(n, b)?;
                    }
                }
                OpKind::BatchNorm {
                    gamma,
                    beta,
                    mean,
                    var,
                    ..
                } => {
                    check(n, gamma)?;
                    check(n, beta)?;
                    check(n, mean)?;
                    check(n, var)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Mutable access to the node list (for transformation passes).
    pub(crate) fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Keeps nodes for which `f` returns a new id, renumbering nodes and
    /// remapping inputs accordingly. `f` must be monotone on kept nodes
    /// (passes compute it that way), preserving topological order. Fails if
    /// a kept node would be left with a dangling input.
    pub(crate) fn retain_and_remap(
        &mut self,
        f: impl Fn(NodeId) -> Option<NodeId>,
    ) -> Result<(), GraphError> {
        let old = std::mem::take(&mut self.nodes);
        for mut n in old {
            if let Some(new_id) = f(n.id) {
                n.id = new_id;
                for i in &mut n.inputs {
                    *i = f(*i).ok_or_else(|| GraphError::Internal {
                        detail: format!("pass kept node {:?} with a dangling input {:?}", n.id, *i),
                    })?;
                }
                self.nodes.push(n);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_tensor::Shape;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new("tiny");
        let w = g.add_param(Tensor::zeros(Shape::nchw(2, 1, 3, 3)));
        let input = g.add_node(OpKind::Input, vec![], "in");
        let conv = g.add_node(
            OpKind::Conv2d {
                weight: w,
                bias: None,
                pad: (1, 1),
                stride: (1, 1),
                groups: 1,
            },
            vec![input],
            "conv1",
        );
        g.add_node(OpKind::Relu, vec![conv], "relu1");
        g
    }

    #[test]
    fn valid_graph_passes() {
        tiny_graph().validate().unwrap();
    }

    #[test]
    fn empty_graph_fails() {
        assert!(Graph::new("e").validate().is_err());
    }

    #[test]
    fn missing_input_fails() {
        let mut g = Graph::new("bad");
        g.add_node(OpKind::Relu, vec![], "r");
        assert!(g.validate().is_err());
    }

    #[test]
    fn forward_reference_fails() {
        let mut g = Graph::new("bad");
        let i = g.add_node(OpKind::Input, vec![], "in");
        // Node 1 referencing node 1 (itself).
        g.add_node(OpKind::Relu, vec![NodeId(1)], "r");
        let _ = i;
        assert!(g.validate().is_err());
    }

    #[test]
    fn add_arity_enforced() {
        let mut g = Graph::new("bad");
        let i = g.add_node(OpKind::Input, vec![], "in");
        g.add_node(OpKind::Add, vec![i], "add");
        assert!(g.validate().is_err());
    }

    #[test]
    fn missing_param_fails() {
        let mut g = Graph::new("bad");
        let i = g.add_node(OpKind::Input, vec![], "in");
        g.add_node(
            OpKind::Conv2d {
                weight: ParamId(0),
                bias: None,
                pad: (0, 0),
                stride: (1, 1),
                groups: 1,
            },
            vec![i],
            "conv",
        );
        assert!(g.validate().is_err());
    }

    #[test]
    fn tunable_excludes_input() {
        let g = tiny_graph();
        let t = g.tunable_nodes();
        assert_eq!(t.len(), 2);
        assert!(!t.contains(&NodeId(0)));
    }

    #[test]
    fn class_histogram_counts() {
        let g = tiny_graph();
        let h = g.class_histogram();
        assert!(h.contains(&(OpClass::Conv, 1)));
        assert!(h.contains(&(OpClass::Other, 1)));
        assert!(h.contains(&(OpClass::Input, 1)));
    }
}
