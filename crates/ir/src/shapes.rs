//! Shape-inference pass: propagates the program input shape through the
//! graph, producing per-node output shapes used by the analytical cost
//! model and by graph validation.

use crate::error::GraphError;
use crate::graph::{Graph, OpKind};
use at_tensor::shape::conv_out_dim;
use at_tensor::{Shape, TensorError};

/// Infers the output shape of every node given the program input shape.
///
/// Returns a vector indexed by node id.
pub fn infer_shapes(graph: &Graph, input: Shape) -> Result<Vec<Shape>, GraphError> {
    graph.validate()?;
    let mut shapes: Vec<Shape> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let shape = match &node.op {
            OpKind::Input => input,
            OpKind::Conv2d {
                weight,
                pad,
                stride,
                groups,
                ..
            } => {
                let (n, c, h, w) = shapes[node.inputs[0].0 as usize].as_nchw()?;
                let (k, cpg, r, s) = graph.param(*weight).shape().as_nchw()?;
                let g = (*groups).max(1);
                if cpg != c / g {
                    return Err(GraphError::Tensor(TensorError::ShapeMismatch {
                        op: "infer_shapes",
                        detail: format!(
                            "node {} ({}): weight channels {cpg} != input {c}/groups {g}",
                            node.id.0, node.label
                        ),
                    }));
                }
                Shape::nchw(
                    n,
                    k,
                    conv_out_dim(h, r, pad.0, stride.0),
                    conv_out_dim(w, s, pad.1, stride.1),
                )
            }
            OpKind::Dense { weight, .. } => {
                let (m, k_in) = shapes[node.inputs[0].0 as usize].as_mat()?;
                let (w_in, w_out) = graph.param(*weight).shape().as_mat()?;
                if k_in != w_in {
                    return Err(GraphError::Tensor(TensorError::ShapeMismatch {
                        op: "infer_shapes",
                        detail: format!(
                            "node {} ({}): dense input {k_in} != weight rows {w_in}",
                            node.id.0, node.label
                        ),
                    }));
                }
                Shape::mat(m, w_out)
            }
            OpKind::MaxPool2d {
                window,
                pad,
                stride,
            }
            | OpKind::AvgPool2d {
                window,
                pad,
                stride,
            } => {
                let (n, c, h, w) = shapes[node.inputs[0].0 as usize].as_nchw()?;
                Shape::nchw(
                    n,
                    c,
                    conv_out_dim(h, window.0, pad.0, stride.0),
                    conv_out_dim(w, window.1, pad.1, stride.1),
                )
            }
            OpKind::Flatten => {
                let s = shapes[node.inputs[0].0 as usize];
                let dims = s.dims();
                Shape::mat(dims[0], dims[1..].iter().product())
            }
            OpKind::Add => {
                let a = shapes[node.inputs[0].0 as usize];
                let b = shapes[node.inputs[1].0 as usize];
                if a != b {
                    return Err(GraphError::Tensor(TensorError::ShapeMismatch {
                        op: "infer_shapes",
                        detail: format!(
                            "node {} ({}): add operands {a} vs {b}",
                            node.id.0, node.label
                        ),
                    }));
                }
                a
            }
            OpKind::Reduce { axis, .. } => {
                let s = shapes[node.inputs[0].0 as usize];
                if *axis >= s.rank() {
                    return Err(GraphError::Tensor(TensorError::AxisOutOfRange {
                        axis: *axis,
                        rank: s.rank(),
                    }));
                }
                let dims: Vec<usize> = s
                    .dims()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &d)| if i == *axis { None } else { Some(d) })
                    .collect();
                if dims.is_empty() {
                    Shape::new(&[1])
                } else {
                    Shape::new(&dims)
                }
            }
            // Shape-preserving ops.
            OpKind::Relu
            | OpKind::ClippedRelu { .. }
            | OpKind::Tanh
            | OpKind::Abs
            | OpKind::BatchNorm { .. }
            | OpKind::Softmax => shapes[node.inputs[0].0 as usize],
        };
        shapes.push(shape);
    }
    Ok(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use at_tensor::Tensor;

    #[test]
    fn cnn_shapes_propagate() {
        let mut g = Graph::new("t");
        let w1 = g.add_param(Tensor::zeros(Shape::nchw(8, 3, 3, 3)));
        let wd = g.add_param(Tensor::zeros(Shape::mat(8 * 16 * 16, 10)));
        let input = g.add_node(OpKind::Input, vec![], "in");
        let conv = g.add_node(
            OpKind::Conv2d {
                weight: w1,
                bias: None,
                pad: (1, 1),
                stride: (1, 1),
                groups: 1,
            },
            vec![input],
            "conv",
        );
        let relu = g.add_node(OpKind::Relu, vec![conv], "relu");
        let pool = g.add_node(
            OpKind::MaxPool2d {
                window: (2, 2),
                pad: (0, 0),
                stride: (2, 2),
            },
            vec![relu],
            "pool",
        );
        let flat = g.add_node(OpKind::Flatten, vec![pool], "flat");
        let dense = g.add_node(
            OpKind::Dense {
                weight: wd,
                bias: None,
            },
            vec![flat],
            "fc",
        );
        g.add_node(OpKind::Softmax, vec![dense], "softmax");

        let shapes = infer_shapes(&g, Shape::nchw(2, 3, 32, 32)).unwrap();
        assert_eq!(shapes[conv.0 as usize], Shape::nchw(2, 8, 32, 32));
        assert_eq!(shapes[pool.0 as usize], Shape::nchw(2, 8, 16, 16));
        assert_eq!(shapes[flat.0 as usize], Shape::mat(2, 8 * 256));
        assert_eq!(shapes[dense.0 as usize], Shape::mat(2, 10));
    }

    #[test]
    fn dense_mismatch_detected() {
        let mut g = Graph::new("t");
        let wd = g.add_param(Tensor::zeros(Shape::mat(100, 10)));
        let input = g.add_node(OpKind::Input, vec![], "in");
        let flat = g.add_node(OpKind::Flatten, vec![input], "flat");
        g.add_node(
            OpKind::Dense {
                weight: wd,
                bias: None,
            },
            vec![flat],
            "fc",
        );
        // 3*4*4 = 48 != 100.
        assert!(infer_shapes(&g, Shape::nchw(1, 3, 4, 4)).is_err());
    }

    #[test]
    fn add_shape_mismatch_detected() {
        let mut g = Graph::new("t");
        let w = g.add_param(Tensor::zeros(Shape::nchw(3, 3, 3, 3)));
        let input = g.add_node(OpKind::Input, vec![], "in");
        let conv = g.add_node(
            OpKind::Conv2d {
                weight: w,
                bias: None,
                pad: (0, 0), // shrinks spatial dims
                stride: (1, 1),
                groups: 1,
            },
            vec![input],
            "conv",
        );
        g.add_node(OpKind::Add, vec![input, conv], "add");
        assert!(infer_shapes(&g, Shape::nchw(1, 3, 8, 8)).is_err());
    }
}
