//! Property tests on the Canny pipeline.

use at_imgproc::canny::{hysteresis, non_max_suppression};
use at_imgproc::{build_canny_graph, canny_reference, gaussian_kernel};
use at_ir::ExecOptions;
use at_tensor::{Shape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gaussian_kernel_always_normalised(k in prop::sample::select(vec![3usize, 5, 7]), sigma in 0.5f32..3.0) {
        let g = gaussian_kernel(k, sigma).unwrap();
        let sum: f32 = g.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(g.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn nms_is_sparsifying_and_bounded(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::uniform(Shape::new(&[1, 12, 12]), 0.0, 1.0, &mut rng);
        let out = non_max_suppression(&t).unwrap();
        // Every surviving value equals its input; suppressed values are 0.
        for (o, i) in out.data().iter().zip(t.data()) {
            prop_assert!(*o == 0.0 || (o - i).abs() < 1e-9);
        }
        // NMS never increases total mass.
        prop_assert!(out.l1() <= t.l1() + 1e-6);
    }

    #[test]
    fn hysteresis_output_is_binary_and_monotone(
        seed in 0u64..500,
        lo in 0.1f32..0.5,
        gap in 0.1f32..0.8,
    ) {
        let hi = lo + gap;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::uniform(Shape::new(&[1, 10, 10]), 0.0, 1.5, &mut rng);
        let e = hysteresis(&t, lo, hi).unwrap();
        prop_assert!(e.data().iter().all(|&v| v == 0.0 || v == 1.0));
        // All strong pixels are edges; all sub-lo pixels are not.
        for (v, &m) in e.data().iter().zip(t.data()) {
            if m >= hi { prop_assert_eq!(*v, 1.0); }
            if m < lo { prop_assert_eq!(*v, 0.0); }
        }
        // Raising the high threshold can only remove edges.
        let stricter = hysteresis(&t, lo, hi + 0.2).unwrap();
        for (a, b) in stricter.data().iter().zip(e.data()) {
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn pipeline_edge_count_reasonable(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = Tensor::uniform(Shape::nchw(1, 1, 16, 16), 0.0, 1.0, &mut rng);
        let g = build_canny_graph(16, 16).unwrap();
        let edges = canny_reference(&g, &img, &ExecOptions::baseline(), 0.4, 1.2).unwrap();
        let frac = edges.data().iter().sum::<f32>() / edges.len() as f32;
        // Noise images: some edges, but never everything.
        prop_assert!(frac < 0.9, "edge fraction {frac}");
    }
}
