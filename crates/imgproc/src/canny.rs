//! The Canny edge-detection pipeline on the tensor substrate.
//!
//! Structure (Canny, 1986): Gaussian smoothing → Sobel gradients → gradient
//! magnitude → non-maximum suppression → double-threshold hysteresis.
//! The smoothing and gradient stages are dataflow-graph convolutions and
//! maps — the units the tuner approximates (perforation/sampling/FP16);
//! non-maximum suppression and hysteresis are cheap, exact post-processing
//! stages applied when computing the PSNR QoS.

use at_ir::{Graph, GraphBuilder};
use at_tensor::{Shape, Tensor, TensorError};

/// A normalised 2-D Gaussian kernel as a `[1, 1, k, k]` weight tensor.
/// Fails (rather than panics) on an even kernel size.
pub fn gaussian_kernel(k: usize, sigma: f32) -> Result<Tensor, TensorError> {
    if k % 2 != 1 {
        return Err(TensorError::ShapeMismatch {
            op: "gaussian_kernel",
            detail: format!("kernel size {k} must be odd"),
        });
    }
    let c = (k / 2) as f32;
    let mut data = Vec::with_capacity(k * k);
    let mut sum = 0.0f32;
    for y in 0..k {
        for x in 0..k {
            let dy = y as f32 - c;
            let dx = x as f32 - c;
            let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            data.push(v);
            sum += v;
        }
    }
    for v in &mut data {
        *v /= sum;
    }
    Tensor::from_vec(Shape::nchw(1, 1, k, k), data)
}

/// The Sobel x/y operators as a single `[2, 1, 3, 3]` weight tensor
/// (channel 0 = Gx, channel 1 = Gy).
pub fn sobel_kernels() -> Result<Tensor, TensorError> {
    let gx = [-1.0f32, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];
    let gy = [-1.0f32, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0];
    let mut data = Vec::with_capacity(18);
    data.extend_from_slice(&gx);
    data.extend_from_slice(&gy);
    Tensor::from_vec(Shape::nchw(2, 1, 3, 3), data)
}

/// Builds the tunable part of the Canny pipeline as a dataflow graph over
/// `[N, 1, H, W]` grayscale images:
///
/// `input → gaussian blur → sobel (Gx, Gy stacked) → |·| →
///  reduce-sum over the channel axis (L1 gradient magnitude)`.
///
/// The reduce is a genuine *reduction* op, so reduction sampling applies,
/// and both convolutions accept the full convolution knob set.
pub fn build_canny_graph(h: usize, w: usize) -> Result<Graph, TensorError> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0); // unused: fixed weights
    let input = Shape::nchw(1, 1, h, w);
    let mut b = GraphBuilder::new("canny", input, &mut rng);
    b.conv_fixed(gaussian_kernel(5, 1.4)?, (2, 2), (1, 1));
    b.conv_fixed(sobel_kernels()?, (1, 1), (1, 1));
    b.abs();
    // Sum |Gx| + |Gy| over the channel axis (axis 1 of NCHW).
    b.reduce(1, at_tensor::ops::ReduceKind::Sum);
    b.finish().map_err(TensorError::from)
}

/// Non-maximum suppression on an `[N, H, W]` (or `[N,1,H,W]`) gradient
/// magnitude tensor: keeps a pixel only when it is a local maximum among
/// its 8-neighbourhood (a simplification of direction-aware NMS that keeps
/// the pipeline tensor-only).
pub fn non_max_suppression(mag: &Tensor) -> Result<Tensor, TensorError> {
    let dims = mag.shape().dims().to_vec();
    let (n, h, w) = match dims.len() {
        3 => (dims[0], dims[1], dims[2]),
        4 => (dims[0] * dims[1], dims[2], dims[3]),
        _ => {
            return Err(TensorError::ShapeMismatch {
                op: "non_max_suppression",
                detail: format!("expected [N,H,W] or [N,1,H,W], got {dims:?}"),
            })
        }
    };
    let src = mag.data();
    let mut out = vec![0.0f32; src.len()];
    for img in 0..n {
        let base = img * h * w;
        for y in 0..h {
            for x in 0..w {
                let v = src[base + y * w + x];
                let mut is_max = true;
                'scan: for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        if dy == 0 && dx == 0 {
                            continue;
                        }
                        let ny = y as i32 + dy;
                        let nx = x as i32 + dx;
                        if ny >= 0
                            && ny < h as i32
                            && nx >= 0
                            && nx < w as i32
                            && src[base + ny as usize * w + nx as usize] > v
                        {
                            is_max = false;
                            break 'scan;
                        }
                    }
                }
                out[base + y * w + x] = if is_max { v } else { 0.0 };
            }
        }
    }
    Tensor::from_vec(mag.shape(), out)
}

/// Double-threshold hysteresis: strong pixels (≥ `hi`) are edges; weak
/// pixels (≥ `lo`) become edges when 8-connected to an edge (iterated to a
/// fixed point). Output is a binary {0, 1} edge map.
pub fn hysteresis(mag: &Tensor, lo: f32, hi: f32) -> Result<Tensor, TensorError> {
    let dims = mag.shape().dims().to_vec();
    let (n, h, w) = match dims.len() {
        3 => (dims[0], dims[1], dims[2]),
        4 => (dims[0] * dims[1], dims[2], dims[3]),
        _ => {
            return Err(TensorError::ShapeMismatch {
                op: "hysteresis",
                detail: format!("expected [N,H,W] or [N,1,H,W], got {dims:?}"),
            })
        }
    };
    let src = mag.data();
    // 0 = off, 1 = weak, 2 = strong.
    let mut state: Vec<u8> = src
        .iter()
        .map(|&v| {
            if v >= hi {
                2
            } else if v >= lo {
                1
            } else {
                0
            }
        })
        .collect();
    for img in 0..n {
        let base = img * h * w;
        // Fixed-point propagation from strong into weak pixels.
        let mut changed = true;
        while changed {
            changed = false;
            for y in 0..h {
                for x in 0..w {
                    let i = base + y * w + x;
                    if state[i] != 1 {
                        continue;
                    }
                    'nb: for dy in -1i32..=1 {
                        for dx in -1i32..=1 {
                            let ny = y as i32 + dy;
                            let nx = x as i32 + dx;
                            if ny >= 0
                                && ny < h as i32
                                && nx >= 0
                                && nx < w as i32
                                && state[base + ny as usize * w + nx as usize] == 2
                            {
                                state[i] = 2;
                                changed = true;
                                break 'nb;
                            }
                        }
                    }
                }
            }
        }
    }
    let out: Vec<f32> = state
        .iter()
        .map(|&s| if s == 2 { 1.0 } else { 0.0 })
        .collect();
    Tensor::from_vec(mag.shape(), out)
}

/// The complete reference pipeline: executes the (possibly approximated)
/// graph on a `[N,1,H,W]` batch and applies exact NMS + hysteresis.
pub fn canny_reference(
    graph: &Graph,
    batch: &Tensor,
    opts: &at_ir::ExecOptions,
    lo: f32,
    hi: f32,
) -> Result<Tensor, at_tensor::TensorError> {
    let mag = at_ir::execute(graph, batch, opts)?;
    let nms = non_max_suppression(&mag)?;
    hysteresis(&nms, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_ir::ExecOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_kernel_normalised_and_peaked() {
        let k = gaussian_kernel(5, 1.4).unwrap();
        let sum: f32 = k.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        // Centre is the max.
        let centre = k.data()[2 * 5 + 2];
        assert!(k.data().iter().all(|&v| v <= centre));
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        // Image: left half 0, right half 1 → strong |Gx| response at the
        // boundary column.
        let h = 8;
        let w = 8;
        let mut img = Tensor::zeros(Shape::nchw(1, 1, h, w));
        for y in 0..h {
            for x in w / 2..w {
                *img.at4_mut(0, 0, y, x) = 1.0;
            }
        }
        let g = build_canny_graph(h, w).unwrap();
        let mag = at_ir::execute(&g, &img, &ExecOptions::baseline()).unwrap();
        // Magnitude highest near the boundary (x = 3..=4), low far away.
        let dims = mag.shape().dims().to_vec();
        assert_eq!(dims, vec![1, h, w]);
        let at = |y: usize, x: usize| mag.data()[y * w + x];
        assert!(at(4, 3) > 1.0, "boundary response {}", at(4, 3));
        assert!(at(4, 0) < 0.2, "far-field response {}", at(4, 0));
    }

    #[test]
    fn nms_thins_plateau() {
        // A wide plateau survives only at local maxima.
        let mut t = Tensor::zeros(Shape::new(&[1, 5, 5]));
        t.data_mut()[2 * 5 + 2] = 2.0; // sharp peak
        t.data_mut()[2 * 5 + 1] = 1.0;
        t.data_mut()[2 * 5 + 3] = 1.0;
        let out = non_max_suppression(&t).unwrap();
        assert_eq!(out.data()[2 * 5 + 2], 2.0);
        assert_eq!(out.data()[2 * 5 + 1], 0.0);
        assert_eq!(out.data()[2 * 5 + 3], 0.0);
    }

    #[test]
    fn hysteresis_connects_weak_to_strong() {
        let mut t = Tensor::zeros(Shape::new(&[1, 3, 5]));
        // Row 1: strong, weak, weak, weak, off-threshold weak chain.
        t.data_mut()[5] = 1.0; // strong (hi = 0.8)
        t.data_mut()[6] = 0.5; // weak
        t.data_mut()[7] = 0.5; // weak
        t.data_mut()[9] = 0.5; // weak but disconnected (gap at index 8)
        let out = hysteresis(&t, 0.3, 0.8).unwrap();
        assert_eq!(out.data()[5], 1.0);
        assert_eq!(out.data()[6], 1.0, "weak connected to strong");
        assert_eq!(out.data()[7], 1.0, "weak connected transitively");
        assert_eq!(out.data()[9], 0.0, "disconnected weak dropped");
    }

    #[test]
    fn full_pipeline_binary_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = Tensor::uniform(Shape::nchw(2, 1, 16, 16), 0.0, 1.0, &mut rng);
        let g = build_canny_graph(16, 16).unwrap();
        let edges = canny_reference(&g, &img, &ExecOptions::baseline(), 0.4, 1.2).unwrap();
        assert!(edges.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn approximated_pipeline_differs_but_overlaps() {
        let mut rng = StdRng::seed_from_u64(2);
        let img = Tensor::uniform(Shape::nchw(1, 1, 24, 24), 0.0, 1.0, &mut rng);
        let g = build_canny_graph(24, 24).unwrap();
        let exact = canny_reference(&g, &img, &ExecOptions::baseline(), 0.4, 1.2).unwrap();
        let mut config = vec![at_ir::ApproxChoice::BASELINE; g.len()];
        // Perforate the Gaussian blur (node 1).
        config[1] = at_ir::ApproxChoice::digital(
            at_tensor::ConvApprox::Perforation {
                dim: at_tensor::PerforationDim::Row,
                k: 2,
                offset: 0,
            },
            at_tensor::ReduceApprox::Exact,
            at_tensor::Precision::Fp32,
        );
        let approx = canny_reference(
            &g,
            &img,
            &at_ir::ExecOptions {
                config,
                promise_seed: 0,
            },
            0.4,
            1.2,
        )
        .unwrap();
        let mse = exact.mse(&approx).unwrap();
        assert!(mse > 0.0, "approximation should perturb the edge map");
        assert!(mse < 0.5, "edge maps should still broadly agree, mse {mse}");
    }
}
