//! The combined CNN + image-processing application (§7.6, Figure 7).
//!
//! An AlexNet2 classifier routes images: those predicted to belong to one
//! of five "edge" classes are forwarded to the Canny pipeline. The QoS is
//! the *pair* (classification accuracy, PSNR of the edge maps) — the
//! application is tuned against a grid of joint thresholds.

use crate::canny::{build_canny_graph, canny_reference};
use at_core::config::Config;
use at_core::knobs::{KnobId, KnobRegistry, KnobSet};
use at_core::qos;
use at_ir::{execute, ApproxChoice, ExecOptions, Graph};
use at_models::{build, Benchmark, BenchmarkId, ModelScale};
use at_tensor::{Shape, Tensor, TensorError};

/// Hysteresis thresholds used by the reference pipeline.
const HYST_LO: f32 = 0.4;
const HYST_HI: f32 = 1.2;

/// The combined application.
pub struct CombinedApp {
    /// The CNN front half (AlexNet2 on CIFAR-10-like data).
    pub cnn: Benchmark,
    /// The Canny back half.
    pub canny: Graph,
    /// Knob registry shared by both halves.
    pub registry: KnobRegistry,
    /// Classes whose images are forwarded to edge detection (5 of 10).
    pub edge_classes: Vec<usize>,
    /// Image height/width the Canny graph was built for.
    pub image_hw: (usize, usize),
}

/// Pre-computed golden data for QoS measurement.
pub struct CombinedGolden {
    /// Baseline CNN predictions per batch.
    pub base_predictions: Vec<Vec<usize>>,
    /// Indices (batch, row) of images the baseline forwards to Canny.
    pub forwarded: Vec<(usize, usize)>,
    /// Golden edge maps, aligned with `forwarded`.
    pub edge_maps: Vec<Tensor>,
}

fn predictions(out: &Tensor) -> Result<Vec<usize>, TensorError> {
    let (rows, classes) = out.shape().as_mat()?;
    Ok((0..rows)
        .map(|r| {
            let row = &out.data()[r * classes..(r + 1) * classes];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect())
}

impl CombinedApp {
    /// Builds the combined application at the given model scale. Fails with
    /// a typed error when the CNN input is not NCHW or the Canny graph
    /// cannot be constructed.
    pub fn new(scale: ModelScale) -> Result<CombinedApp, TensorError> {
        let cnn = build(BenchmarkId::AlexNet2, scale);
        let (_, _, h, w) = cnn.input_shape.as_nchw()?;
        Ok(CombinedApp {
            cnn,
            canny: build_canny_graph(h, w)?,
            registry: KnobRegistry::new(),
            edge_classes: vec![0, 1, 2, 3, 4],
            image_hw: (h, w),
        })
    }

    /// Total nodes across both graphs — the dimension of a combined
    /// configuration (CNN nodes first, then Canny nodes).
    pub fn total_nodes(&self) -> usize {
        self.cnn.graph.len() + self.canny.len()
    }

    /// Per-node knob lists for the combined configuration space.
    pub fn node_knobs(&self, set: KnobSet) -> Vec<Vec<KnobId>> {
        let mut nk = self.registry.node_knobs(&self.cnn.graph, set);
        nk.extend(self.registry.node_knobs(&self.canny, set));
        nk
    }

    /// Splits a combined configuration into (CNN, Canny) halves. Fails when
    /// the configuration does not cover both graphs (instead of panicking
    /// on the slice).
    pub fn split_config(
        &self,
        config: &Config,
    ) -> Result<(Vec<ApproxChoice>, Vec<ApproxChoice>), TensorError> {
        let n = self.cnn.graph.len();
        let total = self.total_nodes();
        if config.knobs().len() < total {
            return Err(TensorError::ShapeMismatch {
                op: "split_config",
                detail: format!(
                    "combined config has {} knobs, application has {total} nodes",
                    config.knobs().len()
                ),
            });
        }
        let cnn_cfg = Config::from_knobs(config.knobs()[..n].to_vec());
        let canny_cfg = Config::from_knobs(config.knobs()[n..].to_vec());
        Ok((
            cnn_cfg.decode(&self.registry, &self.cnn.graph),
            canny_cfg.decode(&self.registry, &self.canny),
        ))
    }

    /// Extracts image `row` of an NCHW batch as a grayscale `[1,1,H,W]`
    /// tensor (channel mean).
    fn grayscale(&self, batch: &Tensor, row: usize) -> Result<Tensor, TensorError> {
        let (rows, c, h, w) = batch.shape().as_nchw()?;
        if row >= rows {
            return Err(TensorError::ShapeMismatch {
                op: "grayscale",
                detail: format!("row {row} out of range for batch of {rows}"),
            });
        }
        let mut data = vec![0.0f32; h * w];
        for ch in 0..c {
            let plane = &batch.data()[(row * c + ch) * h * w..(row * c + ch + 1) * h * w];
            for (d, p) in data.iter_mut().zip(plane) {
                *d += p;
            }
        }
        for v in &mut data {
            *v /= c as f32;
        }
        Tensor::from_vec(Shape::nchw(1, 1, h, w), data)
    }

    /// Chooses the five forwarded classes as the most frequently predicted
    /// classes of the baseline on the given data. (The paper forwards five
    /// fixed CIFAR-10 classes; with synthetic models the prediction mass is
    /// not uniform across class ids, so the routed half is picked by
    /// frequency to keep the routed fraction comparable.)
    pub fn calibrate_routing(&mut self, batches: &[Tensor]) -> Result<(), TensorError> {
        let mut freq = vec![0usize; self.cnn.classes];
        for batch in batches {
            let out = execute(&self.cnn.graph, batch, &ExecOptions::baseline())?;
            for p in predictions(&out)? {
                if let Some(slot) = freq.get_mut(p) {
                    *slot += 1;
                }
            }
        }
        let mut order: Vec<usize> = (0..self.cnn.classes).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(freq[c]));
        self.edge_classes = order[..(self.cnn.classes / 2).max(1)].to_vec();
        Ok(())
    }

    /// Computes the golden data: baseline predictions, the forwarded image
    /// set and exact edge maps.
    pub fn golden(&self, batches: &[Tensor]) -> Result<CombinedGolden, TensorError> {
        let mut base_predictions = Vec::new();
        let mut forwarded = Vec::new();
        let mut edge_maps = Vec::new();
        for (bi, batch) in batches.iter().enumerate() {
            let out = execute(&self.cnn.graph, batch, &ExecOptions::baseline())?;
            let preds = predictions(&out)?;
            for (row, &p) in preds.iter().enumerate() {
                if self.edge_classes.contains(&p) {
                    let gray = self.grayscale(batch, row)?;
                    let edges = canny_reference(
                        &self.canny,
                        &gray,
                        &ExecOptions::baseline(),
                        HYST_LO,
                        HYST_HI,
                    )?;
                    forwarded.push((bi, row));
                    edge_maps.push(edges);
                }
            }
            base_predictions.push(preds);
        }
        Ok(CombinedGolden {
            base_predictions,
            forwarded,
            edge_maps,
        })
    }

    /// Measures the joint QoS `(accuracy %, PSNR dB)` of a combined
    /// configuration.
    ///
    /// Accuracy is computed against `labels`. PSNR is computed over the
    /// *golden* forwarded set: when the approximated CNN fails to forward
    /// an image the baseline forwarded, a zero edge map is charged —
    /// coupling routing errors into image quality, as in the real
    /// application.
    pub fn measure(
        &self,
        config: &Config,
        batches: &[Tensor],
        labels: &[Vec<usize>],
        golden: &CombinedGolden,
        promise_seed: u64,
    ) -> Result<(f64, f64), TensorError> {
        let (cnn_choices, canny_choices) = self.split_config(config)?;
        let cnn_opts = ExecOptions {
            config: cnn_choices,
            promise_seed,
        };
        let canny_opts = ExecOptions {
            config: canny_choices,
            promise_seed,
        };

        // CNN half: outputs + predictions.
        let mut outs = Vec::with_capacity(batches.len());
        for b in batches {
            outs.push(execute(&self.cnn.graph, b, &cnn_opts)?);
        }
        let acc = qos::accuracy(&outs, labels);

        // Image half: edge maps for the golden forwarded set.
        let preds: Vec<Vec<usize>> = outs
            .iter()
            .map(predictions)
            .collect::<Result<Vec<_>, _>>()?;
        let mut mse_sum = 0.0f64;
        let mut count = 0usize;
        for (gi, &(bi, row)) in golden.forwarded.iter().enumerate() {
            let golden_map = &golden.edge_maps[gi];
            let still_forwarded = self.edge_classes.contains(&preds[bi][row]);
            let m = if still_forwarded {
                let gray = self.grayscale(&batches[bi], row)?;
                let edges = canny_reference(&self.canny, &gray, &canny_opts, HYST_LO, HYST_HI)?;
                edges.mse(golden_map)?
            } else {
                // Routing miss: charge a blank edge map.
                Tensor::zeros(golden_map.shape()).mse(golden_map)?
            };
            mse_sum += m;
            count += 1;
        }
        let psnr = if count == 0 {
            qos::psnr_from_mse(0.0)
        } else {
            qos::psnr_from_mse(mse_sum / count as f64)
        };
        Ok((acc, psnr))
    }

    /// Scalar QoS margin for the tuner under a `(accuracy, PSNR)` threshold
    /// pair: the minimum of the two constraint margins (non-negative iff
    /// both constraints hold). Accuracy is in percentage points, PSNR in
    /// dB — comparable magnitudes, as in the paper's grid.
    pub fn margin(acc: f64, psnr: f64, acc_min: f64, psnr_min: f64) -> f64 {
        (acc - acc_min).min(psnr - psnr_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_models::data::build_dataset;

    fn app_and_data() -> (CombinedApp, Vec<Tensor>, Vec<Vec<usize>>) {
        let mut app = CombinedApp::new(ModelScale::Tiny).unwrap();
        let ds = build_dataset(&app.cnn, 24, 12, 3);
        app.calibrate_routing(&ds.batches).unwrap();
        (app, ds.batches, ds.labels)
    }

    #[test]
    fn golden_forwards_subset() {
        let (app, batches, _) = app_and_data();
        let golden = app.golden(&batches).unwrap();
        let total: usize = 24;
        assert!(golden.forwarded.len() <= total);
        assert!(
            !golden.forwarded.is_empty(),
            "with 5 of 10 classes forwarded, some images should route to Canny"
        );
        assert_eq!(golden.forwarded.len(), golden.edge_maps.len());
    }

    #[test]
    fn baseline_measurement_has_max_psnr() {
        let (app, batches, labels) = app_and_data();
        let golden = app.golden(&batches).unwrap();
        let base = Config::from_knobs(vec![KnobId::BASELINE; app.total_nodes()]);
        let (acc, psnr) = app.measure(&base, &batches, &labels, &golden, 0).unwrap();
        assert!(acc > 50.0, "calibrated accuracy {acc}");
        assert_eq!(psnr, 150.0, "baseline edge maps match golden exactly");
    }

    #[test]
    fn approximation_degrades_psnr() {
        let (app, batches, labels) = app_and_data();
        let golden = app.golden(&batches).unwrap();
        let mut config = Config::from_knobs(vec![KnobId::BASELINE; app.total_nodes()]);
        // Aggressively perforate the Canny blur conv (first canny node is
        // at index cnn.len() + 1; node 0 of canny is Input).
        let canny_conv = app.cnn.graph.len() + 1;
        let perf_knob = app
            .registry
            .table(at_ir::OpClass::Conv)
            .iter()
            .find(|k| k.label.starts_with("perf-25%-row-o0-fp32"))
            .unwrap()
            .id;
        config.set_knob(canny_conv, perf_knob);
        let (acc, psnr) = app.measure(&config, &batches, &labels, &golden, 0).unwrap();
        let base = Config::from_knobs(vec![KnobId::BASELINE; app.total_nodes()]);
        let (bacc, bpsnr) = app.measure(&base, &batches, &labels, &golden, 0).unwrap();
        assert_eq!(acc, bacc, "CNN untouched → accuracy unchanged");
        assert!(psnr < bpsnr, "perforated blur must reduce PSNR");
    }

    #[test]
    fn margin_semantics() {
        assert!(CombinedApp::margin(85.0, 25.0, 84.0, 24.0) > 0.0);
        assert!(CombinedApp::margin(85.0, 23.0, 84.0, 24.0) < 0.0);
        assert!(CombinedApp::margin(83.0, 25.0, 84.0, 24.0) < 0.0);
        assert_eq!(CombinedApp::margin(85.0, 24.0, 84.0, 24.0), 0.0);
    }
}
