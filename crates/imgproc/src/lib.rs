#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # at-imgproc — Canny edge detection and the combined CNN + image
//! processing benchmark (§7.6)
//!
//! The paper's eleventh benchmark combines a CNN classifier (AlexNet2 on
//! CIFAR-10) with the Canny edge-detection pipeline: classified images
//! from five of the ten classes are forwarded to edge detection, and the
//! application is tuned under a *pair* of QoS metrics — classification
//! accuracy for the CNN and PSNR for the edge maps (Figure 7).
//!
//! * [`canny`] — the pipeline: Gaussian blur and Sobel gradients expressed
//!   as (tunable) dataflow-graph convolutions, plus the exact
//!   non-maximum-suppression and hysteresis post-processing applied when
//!   computing PSNR.
//! * [`combined`] — the joint application and its two-component QoS.

pub mod canny;
pub mod combined;

pub use canny::{build_canny_graph, canny_reference, gaussian_kernel, sobel_kernels};
pub use combined::CombinedApp;
