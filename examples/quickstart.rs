//! Quickstart: tune a small CNN end-to-end with predictive tuning.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small convolutional classifier, generates a synthetic
//! calibration set, collects per-(op, knob) QoS profiles, runs predictive
//! approximation tuning (Algorithm 1 with the Π1 error-composition model)
//! and prints the resulting accuracy/speedup tradeoff curve.

use approxtuner::core::knobs::{KnobRegistry, KnobSet};
use approxtuner::core::predict::PredictionModel;
use approxtuner::core::qos::{QosMetric, QosReference};
use approxtuner::core::tuner::{PredictiveTuner, TunerParams};
use approxtuner::ir::{execute, ExecOptions, GraphBuilder};
use approxtuner::tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build a program: a small CNN expressed in the dataflow-graph IR.
    let mut rng = StdRng::seed_from_u64(1);
    let input_shape = Shape::nchw(32, 3, 16, 16);
    let mut b = GraphBuilder::new("quickstart-cnn", input_shape, &mut rng);
    b.conv(8, 3, (1, 1), (1, 1))
        .relu()
        .conv(8, 3, (1, 1), (1, 1))
        .relu()
        .max_pool(2, 2)
        .flatten()
        .dense(10)
        .softmax();
    let graph = b.finish().expect("quickstart graph is valid");
    println!("program: {} tensor ops", graph.len());

    // 2. Calibration inputs + labels (here: the baseline's own predictions,
    //    i.e. we tune for fidelity to the exact program).
    let mut drng = StdRng::seed_from_u64(2);
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| Tensor::uniform(input_shape, -1.0, 1.0, &mut drng))
        .collect();
    let mut labels = Vec::new();
    for batch in &inputs {
        let out = execute(&graph, batch, &ExecOptions::baseline()).expect("baseline run");
        let (rows, c) = out.shape().as_mat().unwrap();
        labels.push(
            (0..rows)
                .map(|r| {
                    let row = &out.data()[r * c..(r + 1) * c];
                    (0..c)
                        .max_by(|&i, &j| row[i].partial_cmp(&row[j]).unwrap())
                        .unwrap()
                })
                .collect::<Vec<usize>>(),
        );
    }
    let reference = QosReference::Labels(labels);

    // 3. Predictive tuning: ≤1 percentage point accuracy loss.
    let registry = KnobRegistry::new();
    let tuner = PredictiveTuner {
        graph: &graph,
        registry: &registry,
        inputs: &inputs,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape,
        promise_seed: 0,
    };
    let params = TunerParams {
        qos_min: 97.0,
        max_iters: 600,
        convergence_window: 300,
        model: PredictionModel::Pi1,
        knob_set: KnobSet::HardwareIndependent,
        ..Default::default()
    };
    let profiles = tuner.collect(&params).expect("profile collection");
    println!(
        "profiles: {} (op, knob) pairs in {:.2}s",
        profiles.pairs.len(),
        profiles.collection_time_s
    );
    let result = tuner.tune(&profiles, &params).expect("tuning");
    println!(
        "tuning: {} iterations, alpha = {:.3}, curve = {} points\n",
        result.iterations,
        result.alpha,
        result.curve.len()
    );

    // 4. The tradeoff curve: validated accuracy vs predicted speedup.
    println!("{:>10}  {:>9}  knobs used", "accuracy", "speedup");
    for p in result.curve.points() {
        let hist = p
            .config
            .coarse_histogram(&registry, &graph)
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{:>9.2}%  {:>8.2}x  {}", p.qos, p.perf, hist);
    }

    // 5. Pick the fastest configuration and run it.
    if let Some(best) = result.curve.best_under_qos(params.qos_min) {
        let choices = best.config.decode(&registry, &graph);
        let out = execute(
            &graph,
            &inputs[0],
            &ExecOptions {
                config: choices,
                promise_seed: 0,
            },
        )
        .expect("approximated run");
        println!(
            "\nbest config: predicted {:.2}x speedup; output shape {}",
            best.perf,
            out.shape()
        );
    }
}
