//! Joint-QoS tuning of the combined CNN + Canny application (§7.6).
//!
//! ```bash
//! cargo run --release --example canny_tuning
//! ```
//!
//! Demonstrates the two-metric QoS: classification accuracy for the CNN
//! half and PSNR of the edge maps for the image-processing half, with a
//! small random search over the joint knob space.

use approxtuner::core::config::Config;
use approxtuner::core::knobs::{KnobId, KnobSet};
use approxtuner::imgproc::combined::CombinedApp;
use approxtuner::models::data::build_dataset;
use approxtuner::models::ModelScale;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut app = CombinedApp::new(ModelScale::Tiny).expect("combined app builds");
    let ds = build_dataset(&app.cnn, 24, 12, 11);
    app.calibrate_routing(&ds.batches).expect("routing");
    let golden = app.golden(&ds.batches).expect("golden");
    println!(
        "combined app: {} CNN ops + {} Canny ops; {} of {} images routed to edge detection",
        app.cnn.graph.len(),
        app.canny.len(),
        golden.forwarded.len(),
        ds.len()
    );

    let base = Config::from_knobs(vec![KnobId::BASELINE; app.total_nodes()]);
    let (acc0, psnr0) = app
        .measure(&base, &ds.batches, &ds.labels, &golden, 0)
        .expect("baseline");
    println!("baseline: accuracy {acc0:.2}%, PSNR {psnr0:.1} dB (exact = capped)");

    // Thresholds: ≤2pp accuracy loss, PSNR ≥ 20 dB.
    let acc_min = acc0 - 2.0;
    let psnr_min = 20.0;
    let nk = app.node_knobs(KnobSet::HardwareIndependent);
    let mut rng = StdRng::seed_from_u64(4);
    let mut best: Option<(Config, f64, f64)> = None;
    for trial in 0..40 {
        // Mutate from baseline: a few random knob sites per trial.
        let c = base.mutate(&nk, 1 + trial % 4, &mut rng);
        let (acc, psnr) = app
            .measure(&c, &ds.batches, &ds.labels, &golden, 0)
            .expect("measure");
        if acc >= acc_min && psnr >= psnr_min {
            let n = c.approximated_ops();
            if best
                .as_ref()
                .is_none_or(|(b, _, _)| n > b.approximated_ops())
            {
                best = Some((c, acc, psnr));
            }
        }
    }
    match best {
        Some((c, acc, psnr)) => {
            println!(
                "feasible config with {} approximated ops: accuracy {acc:.2}% (≥ {acc_min:.2}), \
                 PSNR {psnr:.1} dB (≥ {psnr_min:.1})",
                c.approximated_ops()
            );
            println!(
                "margin = {:.2} (min of the two constraint margins)",
                CombinedApp::margin(acc, psnr, acc_min, psnr_min)
            );
        }
        None => println!("no feasible approximation found under ({acc_min:.2}%, {psnr_min} dB)"),
    }
}
