//! The full three-phase ApproxTuner lifecycle on an "edge deployment":
//!
//! 1. **Development time** — predictive tuning with hardware-independent
//!    knobs produces a relaxed tradeoff curve, serialised to JSON ("shipped
//!    with the application binary").
//! 2. **Install time** — the shipped curve is deserialised on the (simulated)
//!    Jetson TX2-class device; a distributed predictive-tuning round adds
//!    the PROMISE analog accelerator's hardware-specific voltage knobs and
//!    produces the final device curve.
//! 3. **Run time** — the runtime controller uses the final curve to keep
//!    batch latency on target as the GPU clock is lowered.
//!
//! ```bash
//! cargo run --release --example edge_deploy
//! ```

use approxtuner::core::install::{distributed_install_tune, EdgeDevice, InstallObjective};
use approxtuner::core::knobs::{KnobRegistry, KnobSet};
use approxtuner::core::predict::PredictionModel;
use approxtuner::core::qos::{QosMetric, QosReference};
use approxtuner::core::runtime::{Policy, RuntimeTuner};
use approxtuner::core::tuner::{PredictiveTuner, TunerParams};
use approxtuner::core::TradeoffCurve;
use approxtuner::hw::FrequencyLadder;
use approxtuner::models::data::build_dataset;
use approxtuner::models::{build, BenchmarkId, ModelScale};

fn main() {
    // The application: AlexNet2 at test scale, with its calibrated dataset.
    let bench = build(BenchmarkId::AlexNet2, ModelScale::Tiny);
    let ds = build_dataset(&bench, 48, 8, 7);
    let (cal, _test) = ds.split();
    let registry = KnobRegistry::new();
    let reference = QosReference::Labels(cal.labels.clone());
    let qos_min = 80.0;

    // --- Phase 1: development time. ---
    let tuner = PredictiveTuner {
        graph: &bench.graph,
        registry: &registry,
        inputs: &cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: cal.batches[0].shape(),
        promise_seed: 0,
    };
    let params = TunerParams {
        qos_min,
        max_iters: 300,
        convergence_window: 150,
        model: PredictionModel::Pi1,
        ..Default::default()
    };
    let profiles = tuner.collect(&params).expect("profiles");
    let dev = tuner.tune(&profiles, &params).expect("dev-time tuning");
    let shipped_json = dev.curve.to_json();
    println!(
        "phase 1 (dev time): shipped curve with {} points ({} bytes of JSON)",
        dev.curve.len(),
        shipped_json.len()
    );

    // --- Phase 2: install time, on the simulated TX2 + PROMISE SoC. ---
    let _shipped = TradeoffCurve::from_json(&shipped_json).expect("curve deserialises");
    let device = EdgeDevice::tx2();
    let labels = cal.labels.clone();
    let shard_ref = move |i: usize, n: usize| {
        QosReference::Labels(
            labels
                .iter()
                .enumerate()
                .filter(|(j, _)| j % n == i)
                .map(|(_, l)| l.clone())
                .collect(),
        )
    };
    let install = distributed_install_tune(
        &bench.graph,
        &registry,
        &device,
        InstallObjective::Speedup,
        &cal.batches,
        QosMetric::Accuracy,
        &shard_ref,
        &reference,
        4, // simulated edge devices participating
        &TunerParams {
            knob_set: KnobSet::WithHardware,
            model: PredictionModel::Pi2,
            max_iters: 300,
            convergence_window: 150,
            qos_min,
            ..Default::default()
        },
        cal.batches[0].shape(),
        0,
    )
    .expect("install-time tuning");
    println!(
        "phase 2 (install time): {} devices; device curve with {} points; \
         profile {:.2}s/device, server tuning {:.2}s",
        install.active_devices,
        install.curve.len(),
        install.device_profile_time_s,
        install.server_tuning_time_s
    );
    for p in install.curve.points() {
        println!("   qos {:6.2}%  device speedup {:5.2}x", p.qos, p.perf);
    }

    // --- Phase 3: run time, under DVFS pressure. ---
    if install.curve.is_empty() {
        println!("phase 3 skipped: empty curve");
        return;
    }
    let ladder = FrequencyLadder::tx2_gpu();
    let base_time = 0.050; // seconds per batch at the top frequency
    let mut rt = RuntimeTuner::new(
        install.curve.clone(),
        Policy::AverageOverTime,
        1,
        base_time,
        3,
    );
    println!("phase 3 (run time): frequency sweep with dynamic adaptation");
    for step in [0, 4, 8, 11] {
        let slowdown = ladder.slowdown(step);
        // A few invocations at this frequency.
        for _ in 0..5 {
            let t = base_time * slowdown / rt.current_speedup();
            rt.record_invocation(t);
        }
        let eff = base_time * slowdown / rt.current_speedup();
        println!(
            "   {:7.1} MHz: env slowdown {:.2}x → config speedup {:.2}x → batch time {:.1} ms (target {:.1} ms)",
            ladder.at(step),
            slowdown,
            rt.current_speedup(),
            eff * 1e3,
            base_time * 1e3
        );
    }
    println!("   configuration switches: {}", rt.switches);
}
