//! Runtime approximation tuning under load (§5 / Figure 6).
//!
//! ```bash
//! cargo run --release --example dynamic_adaptation
//! ```
//!
//! Simulates a stream of inference batches on a device whose GPU frequency
//! is stepped down over time (a low-power mode kicking in), and shows the
//! two runtime control policies keeping latency at the target by spending
//! accuracy.

use approxtuner::core::config::Config;
use approxtuner::core::runtime::{policy2_probabilities, Policy, RuntimeTuner};
use approxtuner::core::{TradeoffCurve, TradeoffPoint};
use approxtuner::hw::FrequencyLadder;

fn demo_curve() -> TradeoffCurve {
    // A curve as it would come out of install-time tuning.
    let pt = |qos: f64, perf: f64| TradeoffPoint {
        qos,
        perf,
        config: Config::from_knobs(vec![]),
    };
    TradeoffCurve::from_points(vec![
        pt(89.4, 1.15),
        pt(89.1, 1.35),
        pt(88.7, 1.62),
        pt(88.2, 1.95),
        pt(87.4, 2.30),
        pt(86.1, 2.75),
    ])
}

fn main() {
    let curve = demo_curve();
    let ladder = FrequencyLadder::tx2_gpu();
    let base_time = 0.040; // 40 ms per batch at 1300.5 MHz, exact config

    println!("Policy 2 probability mixing (the paper's 1.3x example):");
    let (p1, p2) = policy2_probabilities(1.2, 1.5, 1.3);
    println!("  target 1.3x between 1.2x and 1.5x → probabilities {p1:.3} / {p2:.3}\n");

    for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
        println!("--- {policy:?} ---");
        let mut tuner = RuntimeTuner::new(curve.clone(), policy, 2, base_time, 9);
        // Frequency drops over the stream: 1300 → 943 → 675 → 497 MHz.
        for &step in &[0usize, 4, 7, 9] {
            let slowdown = ladder.slowdown(step);
            let mut times = Vec::new();
            let mut speedups = Vec::new();
            for _ in 0..12 {
                let t = base_time * slowdown / tuner.current_speedup();
                times.push(t);
                speedups.push(tuner.current_speedup());
                tuner.record_invocation(t);
            }
            let avg_ms = 1e3 * times.iter().sum::<f64>() / times.len() as f64;
            let avg_s = speedups.iter().sum::<f64>() / speedups.len() as f64;
            let qos = tuner.current_point().map(|p| p.qos).unwrap_or(89.44);
            println!(
                "  {:7.1} MHz (slowdown {:.2}x): avg batch {avg_ms:5.1} ms \
                 (target {:.1}), avg config speedup {avg_s:.2}x, accuracy {qos:.2}%",
                ladder.at(step),
                slowdown,
                base_time * 1e3,
            );
        }
        println!("  switches: {}\n", tuner.switches);
    }
}
