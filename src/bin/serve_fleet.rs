//! Workspace-root alias for the `serve_fleet` load test, so
//! `cargo run --release --bin serve_fleet` works without `-p at-bench`;
//! see `at_bench::serve_fleet` for the experiment body.

fn main() {
    at_bench::serve_fleet::run();
}
