//! Workspace-root alias for the `tune_faults` experiment, so
//! `cargo run --release --bin tune_faults` works without `-p at-bench`;
//! see `at_bench::tune_faults` for the experiment body.

fn main() {
    at_bench::tune_faults::run();
}
