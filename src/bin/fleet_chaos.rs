//! Workspace-root alias for the `fleet_chaos` chaos campaign, so
//! `cargo run --release --bin fleet_chaos` works without `-p at-bench`;
//! see `at_bench::fleet_chaos` for the experiment body.

fn main() {
    at_bench::fleet_chaos::run();
}
