//! `atune` — command-line driver for the ApproxTuner reproduction.
//!
//! ```text
//! atune list
//! atune tune <benchmark> [--qos-drop PP] [--model pi1|pi2] [--samples N]
//!                        [--iters N] [--out FILE]
//! atune inspect <artifact.json>
//! atune install <benchmark> <artifact.json> [--no-fp16] [--samples N]
//! ```
//!
//! `tune` runs development-time predictive tuning on a Table-1 benchmark
//! (synthetic teacher-calibrated dataset) and writes a shipped artifact;
//! `install` loads the artifact on the simulated TX2, verifies it matches
//! the program, and refines it with device measurements.

use approxtuner::core::install::{refine_software_only, EdgeDevice, InstallObjective};
use approxtuner::core::knobs::{KnobRegistry, KnobSet};
use approxtuner::core::predict::PredictionModel;
use approxtuner::core::qos::{QosMetric, QosReference};
use approxtuner::core::tuner::{PredictiveTuner, TunerParams};
use approxtuner::core::ShippedArtifact;
use approxtuner::hw::{DeviceSpec, TimingModel};
use approxtuner::models::data::build_dataset;
use approxtuner::models::{build, BenchmarkId, ModelScale};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  atune list\n  atune tune <benchmark> [--qos-drop PP] [--model pi1|pi2] \
         [--samples N] [--iters N] [--out FILE]\n  atune inspect <artifact.json>\n  \
         atune install <benchmark> <artifact.json> [--no-fp16] [--samples N]"
    );
    ExitCode::from(2)
}

fn find_benchmark(name: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL
        .into_iter()
        .find(|id| id.name().eq_ignore_ascii_case(name))
}

struct Flags {
    qos_drop: f64,
    model: PredictionModel,
    samples: usize,
    iters: usize,
    out: Option<String>,
    fp16: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        qos_drop: 3.0,
        model: PredictionModel::Pi1,
        samples: 64,
        iters: 400,
        out: None,
        fp16: true,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--qos-drop" => {
                i += 1;
                f.qos_drop = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--qos-drop needs a number")?;
            }
            "--model" => {
                i += 1;
                f.model = match args.get(i).map(|s| s.as_str()) {
                    Some("pi1") => PredictionModel::Pi1,
                    Some("pi2") => PredictionModel::Pi2,
                    _ => return Err("--model needs pi1 or pi2".into()),
                };
            }
            "--samples" => {
                i += 1;
                f.samples = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--samples needs a number")?;
            }
            "--iters" => {
                i += 1;
                f.iters = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iters needs a number")?;
            }
            "--out" => {
                i += 1;
                f.out = Some(args.get(i).ok_or("--out needs a path")?.clone());
            }
            "--no-fp16" => f.fp16 = false,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(f)
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<18} {:<10} {:>6}  {:>9}",
        "benchmark", "dataset", "layers", "paper-acc"
    );
    for id in BenchmarkId::ALL {
        println!(
            "{:<18} {:<10} {:>6}  {:>8.2}%",
            id.name(),
            id.dataset(),
            id.paper_layers(),
            id.paper_baseline_accuracy()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_tune(name: &str, flags: Flags) -> ExitCode {
    let Some(id) = find_benchmark(name) else {
        eprintln!("unknown benchmark {name} (try `atune list`)");
        return ExitCode::FAILURE;
    };
    let bench = build(id, ModelScale::Tiny);
    let ds = build_dataset(&bench, flags.samples, 16, 0xC11 ^ id as u64);
    let (cal, _) = ds.split();
    let registry = KnobRegistry::new();
    let reference = QosReference::Labels(cal.labels.clone());
    let tuner = PredictiveTuner {
        graph: &bench.graph,
        registry: &registry,
        inputs: &cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: cal.batches[0].shape(),
        promise_seed: 0,
    };
    // Baseline accuracy → absolute bound.
    let base = approxtuner::core::profile::measure_config(
        &bench.graph,
        &registry,
        &approxtuner::core::Config::baseline(&bench.graph),
        &cal.batches,
        QosMetric::Accuracy,
        &reference,
        0,
    )
    .expect("baseline runs");
    let params = TunerParams {
        qos_min: base - flags.qos_drop,
        max_iters: flags.iters,
        convergence_window: flags.iters / 2,
        model: flags.model,
        knob_set: KnobSet::HardwareIndependent,
        ..Default::default()
    };
    eprintln!(
        "tuning {} ({} ops) for QoS ≥ {:.2}% with {} …",
        id.name(),
        bench.graph.len(),
        params.qos_min,
        flags.model.name()
    );
    let profiles = tuner.collect(&params).expect("profile collection");
    eprintln!(
        "profiles: {} pairs in {:.1}s",
        profiles.pairs.len(),
        profiles.collection_time_s
    );
    let result = tuner.tune(&profiles, &params).expect("tuning");
    eprintln!(
        "search: {} iterations in {:.1}s (α = {:.3}); curve: {} points",
        result.iterations,
        result.tuning_time_s(),
        result.alpha,
        result.curve.len()
    );
    for p in result.curve.points() {
        println!("  qos {:6.2}%  predicted speedup {:5.2}x", p.qos, p.perf);
    }
    let artifact = ShippedArtifact::new(
        &bench.graph,
        QosMetric::Accuracy,
        params.qos_min,
        Some(result.curve.clone()),
        None,
    );
    let path = flags
        .out
        .unwrap_or_else(|| format!("{}.artifact.json", id.name()));
    match std::fs::write(&path, artifact.to_json()) {
        Ok(()) => {
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_inspect(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let art: ShippedArtifact = match serde_json::from_str(&json) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("malformed artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "program {:?}  fingerprint {:#018x}  schema v{}",
        art.program, art.fingerprint, art.version
    );
    println!(
        "metric {:?}, tuned for QoS ≥ {:.2}",
        art.metric, art.qos_min
    );
    for (tag, curve) in [
        ("fp16", &art.curve_fp16),
        ("fp32-only", &art.curve_fp32_only),
    ] {
        match curve {
            Some(c) => {
                println!("curve [{tag}]: {} points", c.len());
                for p in c.points() {
                    println!("  qos {:6.2}  perf {:5.2}x", p.qos, p.perf);
                }
            }
            None => println!("curve [{tag}]: absent"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_install(name: &str, path: &str, flags: Flags) -> ExitCode {
    let Some(id) = find_benchmark(name) else {
        eprintln!("unknown benchmark {name}");
        return ExitCode::FAILURE;
    };
    let bench = build(id, ModelScale::Tiny);
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let curve = match ShippedArtifact::load(&json, &bench.graph, flags.fp16) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("artifact rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    let art: ShippedArtifact = serde_json::from_str(&json).expect("validated above");
    let ds = build_dataset(&bench, flags.samples, 16, 0xC11 ^ id as u64);
    let (cal, _) = ds.split();
    let registry = KnobRegistry::new();
    let reference = QosReference::Labels(cal.labels.clone());
    let device = if flags.fp16 {
        EdgeDevice::tx2()
    } else {
        EdgeDevice {
            timing: TimingModel::new(DeviceSpec::tx2_cpu()),
            ..EdgeDevice::tx2()
        }
    };
    let refined = refine_software_only(
        &bench.graph,
        &registry,
        &device,
        InstallObjective::Speedup,
        &curve,
        &cal.batches,
        QosMetric::Accuracy,
        &reference,
        art.qos_min,
        cal.batches[0].shape(),
        0,
    )
    .expect("refinement");
    println!(
        "install-time curve on {} ({} points):",
        if flags.fp16 { "tx2-gpu" } else { "tx2-cpu" },
        refined.len()
    );
    for p in refined.points() {
        println!("  qos {:6.2}%  measured speedup {:5.2}x", p.qos, p.perf);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("list") => cmd_list(),
        Some("tune") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match parse_flags(&args[2..]) {
                Ok(f) => cmd_tune(name, f),
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            }
        }
        Some("inspect") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            cmd_inspect(path)
        }
        Some("install") => {
            let (Some(name), Some(path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            match parse_flags(&args[3..]) {
                Ok(f) => cmd_install(name, path, f),
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            }
        }
        _ => usage(),
    }
}
