//! Workspace-root alias for the `serve_storm` experiment, so
//! `cargo run --release --bin serve_storm` works without `-p at-bench`;
//! see `at_bench::serve_storm` for the experiment body.

fn main() {
    at_bench::serve_storm::run();
}
