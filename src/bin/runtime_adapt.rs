//! Workspace-root alias for the `runtime_adapt` experiment, so
//! `cargo run --release --bin runtime_adapt` works without `-p at-bench`;
//! see `at_bench::runtime_adapt` for the experiment body.

fn main() {
    at_bench::runtime_adapt::run();
}
