//! Workspace-root alias for the `qos_guard` experiment, so
//! `cargo run --release --bin qos_guard` works without `-p at-bench`;
//! see `at_bench::qos_guard` for the experiment body.

fn main() {
    at_bench::qos_guard::run();
}
