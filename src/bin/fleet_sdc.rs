//! Workspace-root alias for the `fleet_sdc` corruption campaign, so
//! `cargo run --release --bin fleet_sdc` works without `-p at-bench`;
//! see `at_bench::fleet_sdc` for the experiment body.

fn main() {
    at_bench::fleet_sdc::run();
}
