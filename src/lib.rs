#![warn(missing_docs)]

//! # ApproxTuner — a compiler and runtime system for adaptive approximations
//!
//! A from-scratch Rust reproduction of *ApproxTuner* (Sharif et al.,
//! PPoPP 2021): an automatic framework for accuracy-aware optimisation of
//! tensor-based applications that splits approximation-tuning into three
//! phases — development time, install time and run time — and speeds up
//! autotuning with predictive error-composition models (Π1 and Π2).
//!
//! This crate re-exports the public API of the workspace:
//!
//! * [`tensor`] — the tensor compute substrate with exact and approximate
//!   kernels (filter sampling, perforation, reduction sampling, FP16).
//! * [`hw`] — simulated edge-SoC compute units, DVFS, power/energy models.
//! * [`promise`] — the PROMISE analog accelerator simulator.
//! * [`ir`] — the HPVM-style dataflow-graph IR and executor.
//! * [`models`] — the CNN model zoo of the paper's Table 1.
//! * [`core`] — the tuner itself: knobs, tradeoff curves, predictive and
//!   empirical tuning, install-time refinement, runtime adaptation.
//! * [`imgproc`] — the Canny edge-detection pipeline and PSNR QoS.
//!
//! See the `examples/` directory for end-to-end usage, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use at_core as core;
pub use at_hw as hw;
pub use at_imgproc as imgproc;
pub use at_ir as ir;
pub use at_models as models;
pub use at_promise as promise;
pub use at_tensor as tensor;
