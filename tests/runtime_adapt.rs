//! Scenario-driven integration tests for closed-loop runtime adaptation
//! (§5 policies driven over the §6.4 DVFS sweep), plus fault-path tests
//! (sensor dropout, degenerate curves) and property tests tying the
//! monitor and the loop to reference behaviour.

use approxtuner::core::closed_loop::{run_closed_loop, ClosedLoopParams};
use approxtuner::core::config::Config;
use approxtuner::core::monitor::EventKind;
use approxtuner::core::pareto::{TradeoffCurve, TradeoffPoint};
use approxtuner::core::runtime::Policy;
use approxtuner::hw::{Disturbance, DisturbedDevice, FrequencyLadder, Scenario};

/// A synthetic shipped curve with strictly decreasing QoS, so every point
/// survives Pareto filtering. `perfs` must be increasing.
fn curve(perfs: &[f64]) -> TradeoffCurve {
    TradeoffCurve::from_points(
        perfs
            .iter()
            .enumerate()
            .map(|(i, &perf)| TradeoffPoint {
                qos: 98.0 - 2.0 * i as f64,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    )
}

/// The default test curve: covers the sweep's worst 4.08× slowdown, so a
/// correct controller never hits the QoS floor.
fn default_curve() -> TradeoffCurve {
    curve(&[1.15, 1.5, 2.0, 2.6, 3.3, 4.2, 5.0])
}

const DWELL: usize = 20;

fn sweep_device() -> DisturbedDevice {
    DisturbedDevice::tx2(Scenario::tx2_dvfs_sweep(DWELL))
}

#[test]
fn policy1_meets_target_in_every_invocation_of_the_dvfs_sweep() {
    let r = run_closed_loop(
        &default_curve(),
        1.0,
        &sweep_device(),
        &ClosedLoopParams::default(),
    );
    // Feed-forward control: the target holds at *every* invocation,
    // including the first one after each governor step.
    assert_eq!(r.target_hit_rate(1e-9), 1.0, "missed invocations");
    assert_eq!(r.breaches, 0, "default curve covers the whole ladder");
    // No thrashing: one re-selection per ladder step at most.
    assert!(r.switches <= 12, "thrash: {} switches", r.switches);
    assert!(r.switches >= 4, "sweep must force several re-selections");
    // Every decision is a feed-forward event on a step boundary.
    for e in r.log.events() {
        assert_eq!(e.kind, EventKind::FeedForward);
        assert_eq!(e.invocation % DWELL, 0, "off-boundary event {e:?}");
    }
}

#[test]
fn policy1_selection_tracks_the_ladder_monotonically() {
    let r = run_closed_loop(
        &default_curve(),
        1.0,
        &sweep_device(),
        &ClosedLoopParams::default(),
    );
    // As the clock only drops, the selected curve index never decreases.
    let mut prev = -1isize;
    for t in &r.trace {
        let idx = t.selected.map(|i| i as isize).unwrap_or(-1);
        assert!(
            idx >= prev,
            "selection regressed at invocation {}",
            t.invocation
        );
        prev = idx;
    }
    // The bottom step (4.08× slowdown) needs the 4.2× point, not the 5×.
    assert_eq!(r.trace.last().unwrap().selected, Some(5));
}

#[test]
fn policy2_meets_the_target_on_average_within_two_percent() {
    let r = run_closed_loop(
        &default_curve(),
        1.0,
        &sweep_device(),
        &ClosedLoopParams {
            policy: Policy::AverageOverTime,
            ..ClosedLoopParams::default()
        },
    );
    assert!(
        r.mean_norm_time <= 1.02,
        "average target missed: {:.4}",
        r.mean_norm_time
    );
    assert_eq!(r.breaches, 0);
    // The probabilistic mix trades a little time for QoS: the average
    // delivered QoS must be at least Policy 1's.
    let p1 = run_closed_loop(
        &default_curve(),
        1.0,
        &sweep_device(),
        &ClosedLoopParams::default(),
    );
    assert!(
        r.mean_qos >= p1.mean_qos - 1e-9,
        "policy 2 QoS {:.3} below policy 1 {:.3}",
        r.mean_qos,
        p1.mean_qos
    );
}

#[test]
fn timing_jitter_does_not_thrash_switches() {
    // ±4 % multiplicative noise around nominal conditions: the window
    // mean plus the ±2 % dead-band plus min-dwell must keep the
    // controller quiet (a window of 10 averages the noise to ~0.7 % σ,
    // safely inside the band).
    let s = Scenario::new("jitter", FrequencyLadder::tx2_gpu(), 200, 42)
        .with(Disturbance::TimingJitter { amplitude: 0.04 });
    let r = run_closed_loop(
        &default_curve(),
        1.0,
        &DisturbedDevice::tx2(s),
        &ClosedLoopParams {
            window: 10,
            min_dwell: 20,
            ..ClosedLoopParams::default()
        },
    );
    assert!(
        r.switches <= 4,
        "hysteresis failed: {} switches under pure noise",
        r.switches
    );
    assert_eq!(r.breaches, 0);
}

#[test]
fn sensor_dropout_with_undersized_curve_degrades_gracefully() {
    // Sensors go dark, then the governor silently drops to the bottom
    // step (4.08× slowdown) — but the shipped curve tops out at 2.2×.
    let s = Scenario::new("blind-cliff", FrequencyLadder::tx2_gpu(), 140, 3)
        .with(Disturbance::SensorDropout { at: 20, len: 100 })
        .with(Disturbance::GovernorStep {
            at: 40,
            ladder_idx: 11,
        });
    let short = curve(&[1.3, 2.2]);
    for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
        let r = run_closed_loop(
            &short,
            1.0,
            &DisturbedDevice::tx2(s.clone()),
            &ClosedLoopParams {
                policy,
                window: 4,
                ..ClosedLoopParams::default()
            },
        );
        // The breach is visible only through feedback (sensors are down),
        // and must be recorded — never panicked over.
        assert!(r.breaches >= 1, "{policy:?}: breach not recorded");
        assert!(r
            .log
            .events()
            .iter()
            .any(|e| e.kind == EventKind::QosFloorBreach));
        for t in &r.trace {
            assert!(t.time_s.is_finite() && t.time_s > 0.0);
            assert!(t.selected.is_none_or(|i| i < 2));
        }
        // Degradation clamps to the fastest point while blind-throttled.
        assert_eq!(r.trace.last().unwrap().selected, Some(1));
        // Sensor rows really are masked in the trace.
        assert!(r.trace[30].freq_mhz.is_none() && r.trace[30].power_w.is_none());
    }
}

#[test]
fn brownout_load_spike_and_sensor_dropout_combo_degrades_gracefully() {
    // The worst compound disturbance the scenario model can script: a rail
    // brownout (clock forced down), a concurrent load spike (times
    // stretched further), and sensors dark across both — against a curve
    // that cannot cover the stacked slowdown. The loop must clamp to the
    // fastest point, record the QoS-floor breach, and never panic.
    let s = Scenario::new("combo", FrequencyLadder::tx2_gpu(), 160, 13)
        .with(Disturbance::Brownout {
            at: 30,
            len: 80,
            frequency_factor: 0.45,
        })
        .with(Disturbance::LoadSpike {
            at: 50,
            len: 40,
            time_factor: 1.8,
        })
        .with(Disturbance::SensorDropout { at: 25, len: 90 });
    let short = curve(&[1.3, 2.0]);
    for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_closed_loop(
                &short,
                1.0,
                &DisturbedDevice::tx2(s.clone()),
                &ClosedLoopParams {
                    policy,
                    window: 4,
                    ..ClosedLoopParams::default()
                },
            )
        }))
        .unwrap_or_else(|_| panic!("{policy:?}: closed loop panicked under the combo storm"));

        // The stacked ~4x slowdown exceeds the curve's 2x: the floor is
        // breached, visibly and countably — not panicked over.
        assert!(r.breaches >= 1, "{policy:?}: breach not recorded");
        assert!(
            r.log
                .events()
                .iter()
                .any(|e| e.kind == EventKind::QosFloorBreach),
            "{policy:?}: QosFloorBreach event missing"
        );
        // Degradation clamps inside the curve; the trace stays physical.
        for t in &r.trace {
            assert!(t.time_s.is_finite() && t.time_s > 0.0, "bad time {t:?}");
            assert!(t.norm_time.is_finite() && t.norm_time > 0.0);
            assert!(t.selected.is_none_or(|i| i < 2));
        }
        // In the thick of the combined window the fastest point is held.
        let mid: Vec<_> = r
            .trace
            .iter()
            .filter(|t| t.invocation >= 60 && t.invocation < 90)
            .collect();
        assert!(
            mid.iter().all(|t| t.selected == Some(1)),
            "{policy:?}: not clamped to the fastest point mid-storm"
        );
        // Sensor rows are masked while dropped out.
        assert!(r.trace[40].freq_mhz.is_none() && r.trace[40].power_w.is_none());
    }
}

#[test]
fn empty_and_one_point_curves_never_panic() {
    for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
        let params = ClosedLoopParams {
            policy,
            ..ClosedLoopParams::default()
        };
        let device = DisturbedDevice::tx2(Scenario::tx2_dvfs_sweep(5));

        let empty = run_closed_loop(&TradeoffCurve::default(), 1.0, &device, &params);
        assert!(empty.breaches >= 1, "{policy:?}: empty curve must breach");
        assert_eq!(empty.switches, 0);
        assert!(empty.trace.iter().all(|t| t.selected.is_none()));
        assert!(empty
            .trace
            .iter()
            .all(|t| t.time_s.is_finite() && t.time_s > 0.0));

        let single = run_closed_loop(&curve(&[1.5]), 1.0, &device, &params);
        assert!(
            single.breaches >= 1,
            "{policy:?}: 1.5× point cannot cover 4.08×"
        );
        assert!(single
            .trace
            .iter()
            .all(|t| t.selected.is_none_or(|i| i == 0)));
        assert!(single
            .trace
            .iter()
            .all(|t| t.time_s.is_finite() && t.time_s > 0.0));
        // While the curve covers the slowdown, the target still holds.
        let covered: Vec<_> = single
            .trace
            .iter()
            .filter(|t| t.invocation >= 5 && t.invocation < 15)
            .collect();
        assert!(covered.iter().all(|t| t.norm_time <= 1.0 + 1e-9));
    }
}

mod props {
    use super::*;
    use approxtuner::core::monitor::{InvocationSample, SystemMonitor};
    use proptest::prelude::*;

    /// Reference fold the monitor must agree with: plain slice statistics
    /// over the last `window` samples.
    fn reference_mean_time(tail: &[(f64, bool)]) -> f64 {
        tail.iter().map(|(t, _)| *t).sum::<f64>() / tail.len() as f64
    }

    fn reference_mean_power(tail: &[(f64, bool)]) -> Option<f64> {
        let with: Vec<f64> = tail
            .iter()
            .filter(|(_, ok)| *ok)
            .map(|(t, _)| 2.0 * t + 1.0)
            .collect();
        if with.is_empty() {
            None
        } else {
            Some(with.iter().sum::<f64>() / with.len() as f64)
        }
    }

    proptest! {
        #[test]
        fn monitor_window_stats_equal_a_reference_fold(
            samples in proptest::collection::vec((1e-4f64..10.0, proptest::bool::ANY), 1..40),
            window in 1usize..8,
        ) {
            let mut m = SystemMonitor::new(window);
            for (i, &(t, ok)) in samples.iter().enumerate() {
                m.record(InvocationSample {
                    time_s: t,
                    freq_mhz: ok.then_some(1300.5),
                    power_w: ok.then_some(2.0 * t + 1.0),
                });
                let start = (i + 1).saturating_sub(window);
                let tail = &samples[start..=i];
                prop_assert_eq!(m.warm(), tail.len() == window);
                if m.warm() {
                    let mean = m.mean_time_s().unwrap();
                    prop_assert!((mean - reference_mean_time(tail)).abs() < 1e-12);
                }
                prop_assert_eq!(
                    m.mean_power_w().is_some(),
                    reference_mean_power(tail).is_some()
                );
                if let (Some(a), Some(b)) = (m.mean_power_w(), reference_mean_power(tail)) {
                    prop_assert!((a - b).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn runtime_tuner_stats_stay_nan_free_for_arbitrary_finite_streams(
            times in proptest::collection::vec(1e-6f64..1e3, 1..60),
            perfs in proptest::collection::vec(1.05f64..6.0, 0..6),
            window in 1usize..8,
            avg in proptest::bool::ANY,
        ) {
            use approxtuner::core::runtime::RuntimeTuner;
            let mut perfs = perfs;
            perfs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            perfs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            let c = curve(&perfs);
            let policy = if avg {
                Policy::AverageOverTime
            } else {
                Policy::EnforceEachInvocation
            };
            let mut t = RuntimeTuner::new(c.clone(), policy, window, 0.5, 11);
            for (i, &time) in times.iter().enumerate() {
                t.record_invocation(time);
                // Every derived statistic stays finite and physical after
                // every sample, whatever the stream throws at the window.
                prop_assert!(t.current_speedup().is_finite() && t.current_speedup() >= 1.0);
                prop_assert!(t.max_speedup().is_finite() && t.max_speedup() >= 1.0);
                prop_assert!(t.target_time_s().is_finite() && t.target_time_s() > 0.0);
                prop_assert!(
                    t.current_index().is_none_or(|j| j < c.points().len()),
                    "index out of curve at sample {i}"
                );
                if let Some(p) = t.current_point() {
                    prop_assert!(p.perf.is_finite() && p.qos.is_finite());
                }
                // Feed-forward entry point is equally total.
                if i % 7 == 0 {
                    t.adapt_to(time / 0.5);
                    prop_assert!(t.current_speedup().is_finite());
                }
            }
            // A mid-stream window reset never corrupts the statistics.
            t.reset_window();
            t.record_invocation(times[0]);
            prop_assert!(t.current_speedup().is_finite());
        }

        #[test]
        fn closed_loop_never_produces_unphysical_traces(
            perfs in proptest::collection::vec(1.05f64..6.0, 0..6),
            scenario_knobs in (0usize..12, 1usize..30, 0.2f64..3.0, proptest::bool::ANY),
            window in 1usize..6,
            avg in proptest::bool::ANY,
        ) {
            let (idx, at, factor, dropout) = scenario_knobs;
            let mut perfs = perfs;
            perfs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            perfs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            let c = curve(&perfs);
            let mut s = Scenario::new("prop", FrequencyLadder::tx2_gpu(), 60, 5)
                .with(Disturbance::GovernorStep { at, ladder_idx: idx })
                .with(Disturbance::LoadSpike { at: at + 5, len: 10, time_factor: factor })
                .with(Disturbance::TimingJitter { amplitude: 0.03 });
            if dropout {
                s = s.with(Disturbance::SensorDropout { at: at + 2, len: 20 });
            }
            let r = run_closed_loop(
                &c,
                0.01,
                &DisturbedDevice::tx2(s),
                &ClosedLoopParams {
                    policy: if avg { Policy::AverageOverTime } else { Policy::EnforceEachInvocation },
                    window,
                    ..ClosedLoopParams::default()
                },
            );
            prop_assert_eq!(r.trace.len(), 60);
            for t in &r.trace {
                prop_assert!(t.time_s.is_finite() && t.time_s > 0.0, "bad time {t:?}");
                prop_assert!(t.norm_time.is_finite() && t.norm_time > 0.0);
                prop_assert!(t.speedup.is_finite() && t.speedup >= 1.0 - 1e-12);
                // The selected index is always inside the shipped curve.
                prop_assert!(t.selected.is_none_or(|i| i < c.points().len()));
            }
            prop_assert!(r.mean_norm_time.is_finite() && r.mean_qos.is_finite());
            for e in r.log.events() {
                prop_assert!(e.required_speedup.is_finite() && e.required_speedup > 0.0);
            }
        }
    }
}
