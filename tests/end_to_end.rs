//! Cross-crate integration test: the full three-phase ApproxTuner pipeline
//! (development-time → install-time → run-time) on a small CNN.

use approxtuner::core::install::{
    distributed_install_tune, refine_software_only, EdgeDevice, InstallObjective,
};
use approxtuner::core::knobs::{KnobRegistry, KnobSet};
use approxtuner::core::predict::PredictionModel;
use approxtuner::core::qos::{QosMetric, QosReference};
use approxtuner::core::runtime::{Policy, RuntimeTuner};
use approxtuner::core::tuner::{PredictiveTuner, TunerParams};
use approxtuner::core::TradeoffCurve;
use approxtuner::models::data::build_dataset;
use approxtuner::models::{build, BenchmarkId, ModelScale};

struct Setup {
    bench: approxtuner::models::Benchmark,
    cal: approxtuner::models::Dataset,
    registry: KnobRegistry,
}

fn setup() -> Setup {
    let bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
    let ds = build_dataset(&bench, 48, 12, 99);
    let (cal, _) = ds.split();
    Setup {
        bench,
        cal,
        registry: KnobRegistry::new(),
    }
}

fn params(qos_min: f64, model: PredictionModel) -> TunerParams {
    TunerParams {
        qos_min,
        n_calibrate: 4,
        max_iters: 120,
        convergence_window: 120,
        max_validated: 12,
        max_shipped: 8,
        model,
        ..Default::default()
    }
}

#[test]
fn three_phase_pipeline() {
    let s = setup();
    let reference = QosReference::Labels(s.cal.labels.clone());

    // --- Phase 1: development time. ---
    let tuner = PredictiveTuner {
        graph: &s.bench.graph,
        registry: &s.registry,
        inputs: &s.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: s.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let p = params(85.0, PredictionModel::Pi1);
    let profiles = tuner.collect(&p).expect("profiles");
    assert!(
        profiles.pairs.len() > 100,
        "profile pairs {}",
        profiles.pairs.len()
    );
    let dev = tuner.tune(&profiles, &p).expect("dev tuning");
    assert!(!dev.curve.is_empty(), "dev-time curve empty");

    // Ship and reload the curve (JSON roundtrip).
    let json = dev.curve.to_json();
    let shipped = TradeoffCurve::from_json(&json).expect("roundtrip");
    assert_eq!(shipped.len(), dev.curve.len());

    // --- Phase 2: install time, software-only refinement. ---
    let device = EdgeDevice::tx2();
    let refined = refine_software_only(
        &s.bench.graph,
        &s.registry,
        &device,
        InstallObjective::Speedup,
        &shipped,
        &s.cal.batches,
        QosMetric::Accuracy,
        &reference,
        p.qos_min,
        s.cal.batches[0].shape(),
        0,
    )
    .expect("refinement");
    assert!(!refined.is_empty(), "refined curve empty");
    // Device-measured performance replaces the hardware-agnostic estimate;
    // every point satisfies the QoS bound.
    for pt in refined.points() {
        assert!(pt.qos > p.qos_min);
        assert!(pt.perf >= 1.0 - 1e-9, "device speedup {}", pt.perf);
    }

    // --- Phase 2b: hardware-specific (PROMISE) distributed round. ---
    let labels = s.cal.labels.clone();
    let shard_ref = move |i: usize, n: usize| {
        QosReference::Labels(
            labels
                .iter()
                .enumerate()
                .filter(|(j, _)| j % n == i)
                .map(|(_, l)| l.clone())
                .collect(),
        )
    };
    let install = distributed_install_tune(
        &s.bench.graph,
        &s.registry,
        &device,
        InstallObjective::EnergyReduction,
        &s.cal.batches,
        QosMetric::Accuracy,
        &shard_ref,
        &reference,
        2,
        &TunerParams {
            knob_set: KnobSet::WithHardware,
            ..params(85.0, PredictionModel::Pi2)
        },
        s.cal.batches[0].shape(),
        0,
    )
    .expect("install tuning");
    assert_eq!(install.active_devices, 2);
    assert!(!install.curve.is_empty());

    // --- Phase 3: run time. ---
    let base_time = 0.02;
    let mut rt = RuntimeTuner::new(
        refined.clone(),
        Policy::EnforceEachInvocation,
        1,
        base_time,
        1,
    );
    // Environment slows everything down 2x.
    rt.record_invocation(base_time * 2.0);
    let sp = rt.current_speedup();
    // The tuner must have responded (picked something faster than baseline)
    // as long as the curve has any point above 1x.
    let max_curve = refined.points().iter().map(|p| p.perf).fold(1.0, f64::max);
    if max_curve > 1.05 {
        assert!(
            sp > 1.0,
            "runtime tuner did not react (curve max {max_curve})"
        );
    }
}

#[test]
fn impossible_qos_yields_baseline_only_curve() {
    // Failure injection: a QoS bound above what even the baseline achieves
    // must produce an empty curve (validation filters everything), and the
    // pipeline must not panic.
    let s = setup();
    let reference = QosReference::Labels(s.cal.labels.clone());
    let tuner = PredictiveTuner {
        graph: &s.bench.graph,
        registry: &s.registry,
        inputs: &s.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: s.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let p = params(100.5, PredictionModel::Pi2); // > 100% accuracy: impossible
    let profiles = tuner.collect(&p).expect("profiles");
    let dev = tuner.tune(&profiles, &p).expect("tuning still succeeds");
    assert!(dev.curve.is_empty());
    // And downstream consumers handle the empty curve gracefully.
    let mut rt = RuntimeTuner::new(dev.curve, Policy::AverageOverTime, 1, 0.01, 0);
    assert!(rt.record_invocation(1.0).is_none());
    assert_eq!(rt.current_speedup(), 1.0);
}

#[test]
fn predictive_and_empirical_agree_on_feasibility() {
    // Both tuners, same program and bound: both must ship only
    // constraint-satisfying configurations (measured on the calibration
    // inputs), though the exact curves may differ.
    let s = setup();
    let reference = QosReference::Labels(s.cal.labels.clone());
    let p = params(88.0, PredictionModel::Pi2);
    let ptuner = PredictiveTuner {
        graph: &s.bench.graph,
        registry: &s.registry,
        inputs: &s.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: s.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let profiles = ptuner.collect(&p).expect("profiles");
    let pr = ptuner.tune(&profiles, &p).expect("predictive");
    let etuner = approxtuner::core::empirical::EmpiricalTuner {
        graph: &s.bench.graph,
        registry: &s.registry,
        inputs: &s.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: s.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let er = etuner.tune(&p).expect("empirical");
    for pt in pr.curve.points().iter().chain(er.curve.points()) {
        let q = approxtuner::core::profile::measure_config(
            &s.bench.graph,
            &s.registry,
            &pt.config,
            &s.cal.batches,
            QosMetric::Accuracy,
            &reference,
            0,
        )
        .expect("measurement");
        assert!(q > p.qos_min, "shipped config violates the bound: {q}");
    }
}
