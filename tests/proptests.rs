//! Workspace-level property tests on the tuner's core invariants.

use approxtuner::core::config::Config;
use approxtuner::core::pareto::{
    cap_points, pareto_set, pareto_set_eps, TradeoffCurve, TradeoffPoint,
};
use approxtuner::core::runtime::policy2_probabilities;
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = TradeoffPoint> {
    (50.0f64..100.0, 1.0f64..4.0).prop_map(|(qos, perf)| TradeoffPoint {
        qos,
        perf,
        config: Config::from_knobs(vec![]),
    })
}

proptest! {
    #[test]
    fn pareto_set_is_mutually_non_dominated(
        pts in proptest::collection::vec(point_strategy(), 1..60),
    ) {
        let ps = pareto_set(&pts);
        for a in &ps {
            for b in &ps {
                prop_assert!(!a.strictly_dominated_by(b));
            }
        }
    }

    #[test]
    fn pareto_set_is_idempotent(
        pts in proptest::collection::vec(point_strategy(), 1..60),
    ) {
        let once = pareto_set(&pts);
        let twice = pareto_set(&once);
        prop_assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn every_point_dominated_by_some_pareto_point(
        pts in proptest::collection::vec(point_strategy(), 1..60),
    ) {
        let ps = pareto_set(&pts);
        for p in &pts {
            prop_assert!(
                ps.iter().any(|s| p.dominated_by(s)),
                "point ({}, {}) not covered", p.qos, p.perf
            );
        }
    }

    #[test]
    fn eps_relaxation_is_monotone(
        pts in proptest::collection::vec(point_strategy(), 1..60),
        eps1 in 0.0f64..2.0,
        eps2 in 0.0f64..2.0,
    ) {
        let (lo, hi) = if eps1 <= eps2 { (eps1, eps2) } else { (eps2, eps1) };
        prop_assert!(pareto_set_eps(&pts, lo).len() <= pareto_set_eps(&pts, hi).len());
        // ε = 0 is exactly the strict Pareto set.
        prop_assert_eq!(pareto_set_eps(&pts, 0.0).len(), pareto_set(&pts).len());
    }

    #[test]
    fn cap_points_honours_budget_and_keeps_extremes(
        pts in proptest::collection::vec(point_strategy(), 2..80),
        cap in 2usize..20,
    ) {
        let capped = cap_points(pts.clone(), cap);
        prop_assert!(capped.len() <= cap.max(pts.len().min(cap)));
        if pts.len() > cap {
            let min_perf = pts.iter().map(|p| p.perf).fold(f64::INFINITY, f64::min);
            let max_perf = pts.iter().map(|p| p.perf).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(capped.iter().any(|p| (p.perf - min_perf).abs() < 1e-12));
            prop_assert!(capped.iter().any(|p| (p.perf - max_perf).abs() < 1e-12));
        }
    }

    #[test]
    fn curve_query_returns_sufficient_speedup(
        pts in proptest::collection::vec(point_strategy(), 1..40),
        target in 1.0f64..4.0,
    ) {
        let curve = TradeoffCurve::from_points(pts);
        if let Some(p) = curve.config_for_speedup(target) {
            let max_perf = curve.points().iter().map(|q| q.perf).fold(f64::NEG_INFINITY, f64::max);
            // Either the point meets the target, or the target is beyond the
            // curve and we got the fastest point.
            prop_assert!(p.perf >= target || (p.perf - max_perf).abs() < 1e-12);
        }
    }

    #[test]
    fn curve_json_roundtrip(
        pts in proptest::collection::vec(point_strategy(), 0..30),
    ) {
        let curve = TradeoffCurve::from_points(pts);
        let back = TradeoffCurve::from_json(&curve.to_json()).unwrap();
        prop_assert_eq!(back.len(), curve.len());
        for (a, b) in back.points().iter().zip(curve.points()) {
            prop_assert_eq!(a.qos, b.qos);
            prop_assert_eq!(a.perf, b.perf);
        }
    }

    #[test]
    fn policy2_mixing_hits_target_in_expectation(
        lo in 1.0f64..2.0,
        gap in 0.01f64..2.0,
        t in 0.0f64..1.0,
    ) {
        let hi = lo + gap;
        let target = lo + t * gap;
        let (p_lo, p_hi) = policy2_probabilities(lo, hi, target);
        prop_assert!((p_lo + p_hi - 1.0).abs() < 1e-9);
        prop_assert!((p_lo * lo + p_hi * hi - target).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p_lo));
    }
}

/// The checked-in shrink input from `tests/proptests.proptest-regressions`:
/// a single-point curve whose QoS value needs 17 significant digits. The
/// JSON writer/reader must roundtrip it bit-exactly (the original failure
/// was a lossy float serialisation).
#[test]
fn regression_single_point_curve_roundtrips_exactly() {
    let pt = TradeoffPoint {
        qos: 95.83474401824101,
        perf: 1.0,
        config: Config::from_knobs(vec![]),
    };
    let curve = TradeoffCurve::from_points(vec![pt]);
    assert_eq!(curve.len(), 1);
    let back = TradeoffCurve::from_json(&curve.to_json()).expect("roundtrip");
    assert_eq!(back.len(), 1);
    assert_eq!(back.points()[0].qos, 95.83474401824101);
    assert_eq!(back.points()[0].perf, 1.0);
    // The point also survives the query paths.
    assert!(curve.config_for_speedup(1.0).is_some());
}

mod runtime_tuner {
    use approxtuner::core::config::Config;
    use approxtuner::core::pareto::{TradeoffCurve, TradeoffPoint};
    use approxtuner::core::runtime::{policy2_probabilities, Policy, RuntimeTuner};
    use proptest::prelude::*;

    fn curve() -> TradeoffCurve {
        let pt = |qos: f64, perf: f64| TradeoffPoint {
            qos,
            perf,
            config: Config::from_knobs(vec![]),
        };
        TradeoffCurve::from_points(vec![
            pt(90.0, 1.2),
            pt(88.5, 1.5),
            pt(87.0, 1.8),
            pt(85.0, 2.2),
        ])
    }

    proptest! {
        #[test]
        fn policy2_pair_is_convex_and_reproduces_target(
            lo in 1.0f64..3.0,
            gap in 0.0f64..2.0,
            target in 0.5f64..6.0,
        ) {
            let hi = lo + gap;
            let (p_lo, p_hi) = policy2_probabilities(lo, hi, target);
            // Always a convex pair…
            prop_assert!((0.0..=1.0).contains(&p_lo), "p_lo {}", p_lo);
            prop_assert!((0.0..=1.0).contains(&p_hi), "p_hi {}", p_hi);
            prop_assert!((p_lo + p_hi - 1.0).abs() < 1e-9);
            // …and inside the bracket the mix reproduces the target exactly.
            if gap > 1e-9 && (lo..=hi).contains(&target) {
                prop_assert!((p_lo * lo + p_hi * hi - target).abs() < 1e-9);
            }
        }

        #[test]
        fn hysteresis_band_never_switches(
            factors in proptest::collection::vec(0.705f64..1.015, 1..50),
            window in 1usize..5,
            enforce in proptest::bool::ANY,
            seed in 0u64..1000,
        ) {
            // Every invocation time lands strictly inside the hysteresis
            // band [0.7, 1.02]·target, so the tuner must never reconfigure.
            let policy = if enforce {
                Policy::EnforceEachInvocation
            } else {
                Policy::AverageOverTime
            };
            let mut t = RuntimeTuner::new(curve(), policy, window, 1.0, seed);
            for f in factors {
                prop_assert!(t.record_invocation(f).is_none());
            }
            prop_assert_eq!(t.switches, 0);
            prop_assert!(t.current_point().is_none());
        }

        #[test]
        fn switch_counter_is_monotonic(
            times in proptest::collection::vec(0.2f64..4.0, 1..60),
            window in 1usize..4,
            enforce in proptest::bool::ANY,
            seed in 0u64..1000,
        ) {
            let policy = if enforce {
                Policy::EnforceEachInvocation
            } else {
                Policy::AverageOverTime
            };
            let mut t = RuntimeTuner::new(curve(), policy, window, 1.0, seed);
            let mut prev = t.switches;
            for x in times {
                t.record_invocation(x);
                prop_assert!(t.switches >= prev, "switch counter went backwards");
                prev = t.switches;
            }
        }
    }
}

mod knob_roundtrips {
    use approxtuner::core::knobs::{KnobId, KnobRegistry, KnobSet};
    use approxtuner::ir::OpClass;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn decode_never_panics_for_any_id(id in 0u16..200) {
            let r = KnobRegistry::new();
            for class in [OpClass::Conv, OpClass::Dense, OpClass::Reduction, OpClass::Other, OpClass::Input] {
                let _ = r.decode(class, KnobId(id));
            }
        }

        #[test]
        fn every_registered_knob_decodes_to_its_choice(idx in 0usize..63) {
            let r = KnobRegistry::new();
            let table = r.table(OpClass::Conv);
            let k = &table[idx.min(table.len() - 1)];
            prop_assert_eq!(r.decode(OpClass::Conv, k.id), k.choice);
        }

        #[test]
        fn hardware_independent_subset_of_full(_x in 0..1) {
            let r = KnobRegistry::new();
            for class in [OpClass::Conv, OpClass::Dense, OpClass::Reduction, OpClass::Other] {
                let hwi = r.knobs(class, KnobSet::HardwareIndependent).len();
                let all = r.knobs(class, KnobSet::WithHardware).len();
                prop_assert!(hwi <= all);
            }
        }
    }
}
