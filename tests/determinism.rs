//! The batched tuning loop is deterministic across thread counts.
//!
//! All bandit and RNG state advances only on the sequential propose/report
//! path, and evaluators are pure functions of the configuration — so the
//! same seed must produce bit-identical tradeoff curves whether candidates
//! are evaluated on one thread or a pool.

use approxtuner::core::closed_loop::{run_closed_loop, ClosedLoopParams, ClosedLoopReport};
use approxtuner::core::config::Config;
use approxtuner::core::empirical::EmpiricalTuner;
use approxtuner::core::knobs::KnobRegistry;
use approxtuner::core::pareto::{TradeoffCurve, TradeoffPoint};
use approxtuner::core::predict::PredictionModel;
use approxtuner::core::qos::{QosMetric, QosReference};
use approxtuner::core::runtime::Policy;
use approxtuner::core::tuner::{PredictiveTuner, TunerParams, TuningResult};
use approxtuner::hw::{Disturbance, DisturbedDevice, FrequencyLadder, Scenario};
use approxtuner::models::data::build_dataset;
use approxtuner::models::{build, Benchmark, BenchmarkId, Dataset, ModelScale};

struct Setup {
    bench: Benchmark,
    cal: Dataset,
    registry: KnobRegistry,
}

fn setup() -> Setup {
    let bench = build(BenchmarkId::LeNet, ModelScale::Tiny);
    let ds = build_dataset(&bench, 48, 12, 99);
    let (cal, _) = ds.split();
    Setup {
        bench,
        cal,
        registry: KnobRegistry::new(),
    }
}

fn params(model: PredictionModel, max_iters: usize) -> TunerParams {
    TunerParams {
        qos_min: 85.0,
        n_calibrate: 4,
        max_iters,
        convergence_window: max_iters,
        max_validated: 12,
        max_shipped: 8,
        model,
        ..Default::default()
    }
}

fn in_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

fn predictive_run(s: &Setup, threads: usize) -> TuningResult {
    let reference = QosReference::Labels(s.cal.labels.clone());
    let tuner = PredictiveTuner {
        graph: &s.bench.graph,
        registry: &s.registry,
        inputs: &s.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: s.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let p = params(PredictionModel::Pi1, 120);
    in_pool(threads, || {
        let profiles = tuner.collect(&p).expect("profiles");
        tuner.tune(&profiles, &p).expect("tuning")
    })
}

fn empirical_run(s: &Setup, threads: usize) -> TuningResult {
    let reference = QosReference::Labels(s.cal.labels.clone());
    let tuner = EmpiricalTuner {
        graph: &s.bench.graph,
        registry: &s.registry,
        inputs: &s.cal.batches,
        metric: QosMetric::Accuracy,
        reference: &reference,
        input_shape: s.cal.batches[0].shape(),
        promise_seed: 0,
    };
    let p = params(PredictionModel::Pi2, 40);
    in_pool(threads, || tuner.tune(&p).expect("tuning"))
}

fn assert_identical(a: &TuningResult, b: &TuningResult) {
    assert_eq!(a.iterations, b.iterations, "iteration counts differ");
    assert_eq!(a.cache, b.cache, "cache counters differ");
    assert_eq!(a.telemetry.len(), b.telemetry.len(), "telemetry differs");
    assert_eq!(a.curve.len(), b.curve.len(), "curve lengths differ");
    // Bit-exact: the JSON writer roundtrips f64 exactly, so string equality
    // is value equality.
    assert_eq!(a.curve.to_json(), b.curve.to_json(), "curves differ");
}

#[test]
fn predictive_tuning_identical_across_thread_counts() {
    let s = setup();
    let single = predictive_run(&s, 1);
    let multi = predictive_run(&s, 4);
    assert_identical(&single, &multi);
    assert!(!single.curve.is_empty(), "tuning produced no curve");
}

#[test]
fn empirical_tuning_identical_across_thread_counts() {
    let s = setup();
    let single = empirical_run(&s, 1);
    let multi = empirical_run(&s, 4);
    assert_identical(&single, &multi);
}

/// A kitchen-sink scenario exercising every disturbance class at once.
fn kitchen_sink() -> Scenario {
    Scenario::new("kitchen-sink", FrequencyLadder::tx2_gpu(), 160, 21)
        .with(Disturbance::GovernorStep {
            at: 20,
            ladder_idx: 5,
        })
        .with(Disturbance::ThermalRamp {
            at: 50,
            len: 20,
            floor_idx: 9,
        })
        .with(Disturbance::Brownout {
            at: 90,
            len: 15,
            frequency_factor: 0.8,
        })
        .with(Disturbance::LoadSpike {
            at: 110,
            len: 20,
            time_factor: 1.5,
        })
        .with(Disturbance::SensorDropout { at: 120, len: 25 })
        .with(Disturbance::TimingJitter { amplitude: 0.02 })
}

fn adaptation_run(policy: Policy, threads: usize) -> ClosedLoopReport {
    let curve = TradeoffCurve::from_points(
        [1.15, 1.5, 2.0, 2.6, 3.3, 4.2]
            .iter()
            .enumerate()
            .map(|(i, &perf)| TradeoffPoint {
                qos: 98.0 - 2.0 * i as f64,
                perf,
                config: Config::from_knobs(vec![]),
            })
            .collect(),
    );
    let device = DisturbedDevice::tx2(kitchen_sink());
    let params = ClosedLoopParams {
        policy,
        window: 4,
        ..ClosedLoopParams::default()
    };
    in_pool(threads, || run_closed_loop(&curve, 0.05, &device, &params))
}

#[test]
fn closed_loop_reports_identical_across_thread_counts() {
    // The closed loop is sequential by construction — device state is a
    // pure function of (scenario, seed, invocation) — so the full report
    // (trace + adaptation log) must be bit-identical JSON regardless of
    // the ambient rayon pool.
    for policy in [Policy::EnforceEachInvocation, Policy::AverageOverTime] {
        let single = adaptation_run(policy, 1);
        let multi = adaptation_run(policy, 4);
        assert!(!single.log.events().is_empty(), "scenario forced no events");
        assert_eq!(
            single.to_json(),
            multi.to_json(),
            "{policy:?} report differs across thread counts"
        );
    }
}

#[test]
fn adaptation_log_first_event_matches_golden_snapshot() {
    // Pins the serialised form of one adaptation event: the feed-forward
    // re-selection at the kitchen-sink scenario's first governor step.
    // Churn here means either the controller or the JSON encoding drifted.
    let r = adaptation_run(Policy::EnforceEachInvocation, 2);
    let first = serde_json::to_string(&r.log.events()[0]).expect("serialises");
    assert_eq!(first, GOLDEN_FIRST_EVENT, "golden adaptation event drifted");
}

const GOLDEN_FIRST_EVENT: &str = "{\"invocation\":20,\"observed_time_s\":0.04990458067877124,\
     \"required_speedup\":1.5223880597014925,\"selected\":[94,2],\"kind\":\"FeedForward\"}";

#[test]
fn cache_counters_reconcile_with_iterations() {
    let s = setup();
    let r = predictive_run(&s, 2);
    // Every proposal (plus the seed configurations) goes through the cache
    // exactly once, so the counters must reconcile with the iteration count.
    assert_eq!(
        r.cache.hits + r.cache.misses + r.cache.dedup,
        r.iterations,
        "cache lookups must equal tuning iterations"
    );
    assert!(r.cache.hits > 0, "the ensemble never revisited a config");
    assert!(
        r.cache.misses <= r.iterations,
        "more evaluator invocations than iterations"
    );
}
