//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] (a deterministic xoshiro256++ generator seeded via
//! SplitMix64), the [`Rng`] extension trait with `gen_range` / `gen_bool`,
//! and [`SeedableRng::seed_from_u64`]. The generator is *not* stream
//! compatible with upstream `rand`; everything in this workspace treats
//! seeds as opaque, so only determinism and statistical quality matter.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a uniform-sampling routine; mirrors `rand`'s trait of the
/// same name so type inference behaves identically (a single blanket
/// `SampleRange` impl per range kind, generic over `T`).
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// A uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range that an RNG can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f32::sample_half_open(rng, lo, hi)
    }
}

/// User-facing RNG extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring via
        /// [`StdRng::from_state`] resumes the exact output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(3);
        for _ in 0..17 {
            a.gen_range(0u64..u64::MAX);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&n));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn float_unit_interval_covers_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
