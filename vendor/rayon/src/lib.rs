//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of rayon it uses: `par_iter().map().collect()`,
//! `par_chunks[_mut]` with `for_each` / `enumerate` / `zip`, and
//! [`ThreadPoolBuilder`] + [`ThreadPool::install`] for scoped thread-count
//! control. Work runs on a single persistent pool of OS threads (sized to
//! the machine's available parallelism); regions are fork-join with static
//! contiguous partitioning, which preserves deterministic result ordering.
//!
//! Thread-count resolution order: [`ThreadPool::install`] override on the
//! calling thread, then the `RAYON_NUM_THREADS` environment variable, then
//! the machine's available parallelism. Nested parallel regions (a region
//! entered from inside a pool worker) run sequentially, like a depth-1
//! work-stealing cutoff.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Pool engine
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    tx: mpsc::Sender<Job>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    workers: Mutex<usize>,
}

/// Growth cap for on-demand workers; far above any sane `num_threads`
/// override, it only guards against runaway requests.
const MAX_POOL_WORKERS: usize = 64;

static POOL: OnceLock<PoolInner> = OnceLock::new();

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn spawn_worker(index: usize, rx: Arc<Mutex<mpsc::Receiver<Job>>>) {
    std::thread::Builder::new()
        .name(format!("at-rayon-{index}"))
        .spawn(move || {
            IN_WORKER.with(|w| w.set(true));
            loop {
                let job = {
                    let guard = rx.lock().unwrap();
                    guard.recv()
                };
                match job {
                    Ok(job) => job(),
                    Err(_) => break,
                }
            }
        })
        .expect("spawn pool worker");
}

fn pool() -> &'static PoolInner {
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..workers {
            spawn_worker(i, Arc::clone(&rx));
        }
        PoolInner {
            tx,
            rx,
            workers: Mutex::new(workers),
        }
    })
}

/// Grows the pool so at least `needed` workers exist. An explicit
/// `num_threads` override may exceed the machine's core count (useful for
/// latency-bound work and for exercising concurrency on small machines);
/// idle extra workers just block on the shared channel.
fn ensure_workers(pool: &PoolInner, needed: usize) {
    let needed = needed.min(MAX_POOL_WORKERS);
    let mut count = pool.workers.lock().unwrap();
    while *count < needed {
        spawn_worker(*count, Arc::clone(&pool.rx));
        *count += 1;
    }
}

/// The number of threads a parallel region started on this thread would use.
pub fn current_num_threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct RegionState {
    remaining: Mutex<(usize, Option<Box<dyn Any + Send>>)>,
    done: Condvar,
}

/// Runs `parts` part-closures, parts 1.. on the pool and part 0 inline,
/// blocking until all complete. Panics are propagated to the caller.
fn run_region(parts: usize, f: &(dyn Fn(usize) + Sync)) {
    if parts == 0 {
        return;
    }
    let sequential = parts == 1 || IN_WORKER.with(|w| w.get());
    if sequential {
        for i in 0..parts {
            f(i);
        }
        return;
    }
    let pool = pool();
    // Parts 1.. go to the pool (part 0 runs inline on the caller).
    ensure_workers(pool, parts - 1);
    let state = Arc::new(RegionState {
        remaining: Mutex::new((parts - 1, None)),
        done: Condvar::new(),
    });
    // SAFETY: this function blocks until every enqueued job has signalled
    // completion (the condvar wait below), so the borrow erased to 'static
    // strictly outlives each job's execution.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    for i in 1..parts {
        let state = Arc::clone(&state);
        pool.tx
            .send(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f_static(i)));
                let mut guard = state.remaining.lock().unwrap();
                if let Err(payload) = result {
                    guard.1.get_or_insert(payload);
                }
                guard.0 -= 1;
                if guard.0 == 0 {
                    state.done.notify_all();
                }
            }))
            .expect("pool alive");
    }
    let main_result = catch_unwind(AssertUnwindSafe(|| f(0)));
    let mut guard = state.remaining.lock().unwrap();
    while guard.0 > 0 {
        guard = state.done.wait(guard).unwrap();
    }
    let worker_panic = guard.1.take();
    drop(guard);
    if let Err(payload) = main_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

fn effective_parts(items: usize) -> usize {
    current_num_threads().min(items).max(1)
}

/// Fork-join over owned items with stable indices: calls `f(index, item)`
/// for every item, partitioned contiguously across threads.
fn parallel_for_each_indexed<I: Send>(items: Vec<I>, f: impl Fn(usize, I) + Sync) {
    let n = items.len();
    let parts = effective_parts(n);
    if parts <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(parts);
    let mut split: Vec<(usize, Vec<I>)> = Vec::with_capacity(parts);
    let mut iter = items.into_iter();
    let mut base = 0;
    while base < n {
        let part: Vec<I> = iter.by_ref().take(chunk).collect();
        let len = part.len();
        split.push((base, part));
        base += len;
    }
    type Part<I> = Mutex<Option<(usize, Vec<I>)>>;
    let split: Vec<Part<I>> = split.into_iter().map(|p| Mutex::new(Some(p))).collect();
    run_region(split.len(), &|pi| {
        let (base, part) = split[pi].lock().unwrap().take().expect("part taken once");
        for (j, item) in part.into_iter().enumerate() {
            f(base + j, item);
        }
    });
}

/// Fork-join map preserving input order.
fn parallel_map<I: Send, R: Send>(items: Vec<I>, f: impl Fn(I) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    parallel_for_each_indexed(items, |i, item| {
        let r = f(item);
        collected.lock().unwrap().push((i, r));
    });
    let mut pairs = collected.into_inner().unwrap();
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// Parallel iterator facade
// ---------------------------------------------------------------------------

/// `slice.par_iter()` — parallel shared iteration over slice elements.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (evaluated in parallel on `collect`).
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let refs: Vec<&T> = self.slice.iter().collect();
        parallel_for_each_indexed(refs, |_, r| f(r));
    }
}

/// Lazy parallel map over a slice.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map in parallel, collecting results in input order.
    pub fn collect<C>(self) -> C
    where
        F: Fn(&'a T) -> C::Item + Sync,
        C: FromParallelResults,
        C::Item: Send,
    {
        let refs: Vec<&T> = self.slice.iter().collect();
        let results = parallel_map(refs, |r| (self.f)(r));
        C::from_vec(results)
    }
}

/// Result containers `ParMap::collect` can build (order-preserving).
pub trait FromParallelResults {
    /// Element type.
    type Item;
    /// Builds the container from ordered results.
    fn from_vec(v: Vec<Self::Item>) -> Self;
}

impl<T> FromParallelResults for Vec<T> {
    type Item = T;
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T, E> FromParallelResults for Result<Vec<T>, E> {
    type Item = Result<T, E>;
    fn from_vec(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// `slice.par_chunks(n)` — parallel iteration over fixed-size chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

/// `slice.par_chunks_mut(n)` — parallel iteration over mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send + Sync> ParChunksMut<'a, T> {
    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.size).collect();
        parallel_for_each_indexed(chunks, |_, c| f(c));
    }

    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { inner: self }
    }

    /// Zips mutable chunks with the shared chunks of another slice.
    pub fn zip<'b, U: Sync>(self, other: ParChunks<'b, U>) -> ZipChunks<'a, 'b, T, U> {
        ZipChunks { a: self, b: other }
    }
}

/// `par_chunks_mut(..).enumerate()`.
pub struct EnumerateChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send + Sync> EnumerateChunksMut<'_, T> {
    /// Runs `f((index, chunk))` on every chunk in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.inner.slice.chunks_mut(self.inner.size).collect();
        parallel_for_each_indexed(chunks, |i, c| f((i, c)));
    }
}

/// `par_chunks_mut(..).zip(par_chunks(..))`.
pub struct ZipChunks<'a, 'b, T, U> {
    a: ParChunksMut<'a, T>,
    b: ParChunks<'b, U>,
}

impl<T: Send + Sync, U: Sync> ZipChunks<'_, '_, T, U> {
    /// Runs `f((mut_chunk, chunk))` on every chunk pair in parallel.
    pub fn for_each<F: Fn((&mut [T], &[U])) + Sync>(self, f: F) {
        let pairs: Vec<(&mut [T], &[U])> = self
            .a
            .slice
            .chunks_mut(self.a.size)
            .zip(self.b.slice.chunks(self.b.size))
            .collect();
        parallel_for_each_indexed(pairs, |_, (ca, cb)| f((ca, cb)));
    }
}

/// Extension methods on shared slices (rayon's `ParallelSlice` +
/// `IntoParallelRefIterator` subset).
pub trait ParallelSlice<T: Sync> {
    /// Parallel fixed-size chunks.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    /// Parallel shared element iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Extension methods on mutable slices (rayon's `ParallelSliceMut` subset).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel fixed-size mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

// ---------------------------------------------------------------------------
// ThreadPool facade
// ---------------------------------------------------------------------------

/// Error building a thread pool (infallible here; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count handle.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count regions inside `install` will use.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self
                .num_threads
                .filter(|&n| n > 0)
                .unwrap_or_else(current_num_threads),
        })
    }
}

/// A handle that scopes parallel regions to a fixed thread count. All
/// handles share the single process-wide worker pool; `install` only
/// controls how many partitions a region is split into.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count regions inside `install` use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count as the calling thread's
    /// parallelism override.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let previous = OVERRIDE.with(|o| o.replace(Some(self.num_threads)));
        let _restore = Restore(previous);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn explicit_thread_count_grows_the_pool() {
        // A `num_threads` override above the machine's core count must
        // still provide that much *concurrency* (the pool grows on
        // demand): with 4 threads and 4 sleeping items, at least two
        // sleeps must overlap even on a single-core machine.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..4).collect();
        pool.install(|| {
            items.par_iter().for_each(|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                live.fetch_sub(1, Ordering::SeqCst);
            });
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "no two items ran concurrently"
        );
    }

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, i * 2);
        }
    }

    #[test]
    fn chunks_mut_enumerate_writes_every_chunk() {
        let mut data = vec![0u64; 1024];
        data.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 64) as u64);
        }
    }

    #[test]
    fn zip_pairs_aligned_chunks() {
        let src: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let mut dst = vec![0f32; 256];
        dst.par_chunks_mut(16)
            .zip(src.par_chunks(16))
            .for_each(|(d, s)| d.copy_from_slice(s));
        assert_eq!(dst, src);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool4.install(|| assert_eq!(current_num_threads(), 4));
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let xs: Vec<i32> = (0..100).collect();
        let r: Result<Vec<i32>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn panics_propagate_from_workers() {
        let xs: Vec<i32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            xs.par_iter().for_each(|&x| {
                if x == 63 {
                    panic!("worker panic");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn nested_regions_complete() {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<usize> = (0..100).collect();
                let mapped: Vec<usize> = inner.par_iter().map(|&i| i + o).collect();
                mapped.iter().sum()
            })
            .collect();
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[0], 4950);
    }
}
