//! Offline vendored subset of the `proptest` API.
//!
//! Same surface as upstream for what this workspace uses — range and tuple
//! strategies, `prop_map` / `prop_filter`, `collection::vec`,
//! `sample::select`, and the `proptest!` / `prop_assert!` macros — but a
//! much simpler engine: cases are generated from a deterministic RNG seeded
//! by the test name, and failures panic with the generated inputs rather
//! than shrinking. `.proptest-regressions` files are not consulted; pin any
//! regression seed as an explicit unit test instead.
//!
//! The number of cases per property defaults to 256 and can be overridden
//! with `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from an arbitrary string (the test's module path).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a, so seeds are stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// How many cases [`proptest!`] runs per property.
pub fn cases() -> u32 {
    cases_or(256)
}

/// Like [`cases`], but with an explicit default (used by
/// `#![proptest_config(..)]`); the `PROPTEST_CASES` environment variable
/// still wins.
pub fn cases_or(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-block configuration, accepted via `#![proptest_config(..)]` at the
/// top of a [`proptest!`] block. Only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// `bool` strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform over `{true, false}`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Upstream-compatible name for the uniform bool strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range, built from a `usize` (exact length), a
    /// half-open range, or an inclusive range — mirroring upstream's
    /// `Into<SizeRange>` conversions.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty length range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.min..=self.len.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly selects one of `options` (which must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    /// Upstream spells strategies like `prop::collection::vec(..)`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Unlike upstream there is no shrinking: the first failing case panics
/// with the generated arguments included in the message.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { $crate::cases_or(($cfg).cases); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::cases(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the first token is the case
/// count expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategies = ($($strat,)+);
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$cases {
                let values = $crate::Strategy::generate(&strategies, &mut rng);
                // Render inputs up front: the body may consume them.
                let rendered = ::std::format!(
                    concat!("  (", $(stringify!($arg), ", ",)+ ") = {:?}\n"),
                    &values
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    let ($($arg,)+) = values;
                    $body
                }));
                if let ::std::result::Result::Err(payload) = result {
                    eprintln!(
                        "proptest case {case} of {} failed with inputs:\n{rendered}",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::std::assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0.0f64..1.0, 5i32..9)) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn mapped_and_filtered(
            v in prop::collection::vec((0usize..100).prop_map(|x| x * 2), 1..8),
            odd in (0i64..50).prop_filter("odd", |x| x % 2 == 1),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert_eq!(odd % 2, 1);
        }
    }

    mod configured {
        use crate::prelude::*;
        use std::sync::atomic::{AtomicU32, Ordering};

        static RAN: AtomicU32 = AtomicU32::new(0);

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(7))]

            #[test]
            fn config_block_sets_case_count(x in 0usize..10) {
                RAN.fetch_add(1, Ordering::Relaxed);
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn case_count_was_honoured() {
            config_block_sets_case_count();
            // The env var may override the block config; either way the
            // property must have run at least once.
            assert!(RAN.load(Ordering::Relaxed) >= 7 || std::env::var("PROPTEST_CASES").is_ok());
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let mut r1 = crate::TestRng::from_name("fixed");
        let mut r2 = crate::TestRng::from_name("fixed");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
