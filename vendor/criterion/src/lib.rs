//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Implements the slice of the criterion surface this workspace's benches
//! use — `Criterion::default()` builder config, `bench_function`,
//! `benchmark_group` / `bench_with_input`, `criterion_group!` /
//! `criterion_main!` — over a plain wall-clock harness: per benchmark it
//! warms up, then collects `sample_size` samples within roughly
//! `measurement_time` and reports min / median / mean per iteration. No
//! statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// Benchmark driver, configured with a consuming builder like upstream.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target time spent measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the closure before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(self);
        f(&mut b);
        b.report(&id);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Overrides the warm-up budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.criterion);
        f(&mut b);
        b.report(&id);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let id = format!("{}/{}", self.name, id.render());
        let mut b = Bencher::new(self.criterion);
        f(&mut b, input);
        b.report(&id);
    }

    /// Finishes the group (upstream flushes reports here; we report as we
    /// go, so this is a no-op kept for API parity).
    pub fn finish(self) {}
}

/// Identifier combining a function name and an input parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A new id: `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Handed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    fn new(c: &Criterion) -> Bencher {
        Bencher {
            sample_size: c.sample_size,
            measurement_time: c.measurement_time,
            warm_up_time: c.warm_up_time,
            samples_ns: Vec::new(),
            total_iters: 0,
        }
    }

    /// Measures the routine: warm-up, then `sample_size` samples within
    /// roughly the configured measurement time, each sample batching enough
    /// iterations to dominate timer overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Batch so one sample takes ~ measurement_time / sample_size.
        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).clamp(1, 1_000_000_000);

        self.samples_ns.clear();
        self.total_iters = 0;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
            self.total_iters += batch;
            // Never run wildly past the configured budget.
            if measure_start.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<50} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Opaque value barrier (re-exported for convenience; benches in this
/// workspace mostly use `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("param", 42), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
