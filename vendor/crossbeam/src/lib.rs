//! Offline vendored subset of the `crossbeam` API.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / `join` are used by
//! this workspace; they are implemented directly over `std::thread::scope`
//! (stable since Rust 1.63), which provides the same borrow-the-stack
//! guarantee.

/// Scoped threads (crossbeam's `thread` module subset).
pub mod thread {
    use std::any::Any;

    /// A scope handle; `spawn` borrows from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (for
        /// nested spawns), mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope: all threads spawned inside are joined before it
    /// returns. Unlike `std::thread::scope`, returns `Result` for API
    /// parity with crossbeam (always `Ok`; panics propagate by unwinding).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
