//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde facade. It is **not** the real serde data model:
//! serialization goes through a concrete JSON-like [`Value`] tree instead of
//! visitor-driven `Serializer`/`Deserializer` traits. The workspace only
//! ever derives `Serialize`/`Deserialize` and round-trips through
//! `serde_json`, so the simplified model is behaviourally equivalent for
//! every type in this repository:
//!
//! - named structs serialize to objects, newtype structs to their inner
//!   value, tuple structs to arrays (matching upstream serde);
//! - unit enum variants serialize to strings, data-carrying variants to
//!   single-key objects (upstream's externally-tagged representation);
//! - `f64` values round-trip exactly (shortest-representation printing and
//!   correctly-rounded `str::parse`), which is what the workspace's
//!   `float_roundtrip` feature request requires.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree — the interchange format of this serde facade.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (any JSON integer that fits an `i64`).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access on objects; `Null` for missing keys or non-objects
    /// (matching `serde_json`).
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Member access on objects, inserting `Null` for missing keys
    /// (matching `serde_json`'s auto-vivifying `IndexMut`).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            panic!("cannot index into a {} with a string key", self.kind());
        }
        let Value::Object(pairs) = self else {
            unreachable!()
        };
        if let Some(i) = pairs.iter().position(|(k, _)| k == key) {
            return &mut pairs[i].1;
        }
        pairs.push((key.to_string(), Value::Null));
        &mut pairs.last_mut().unwrap().1
    }
}

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object's pairs (helper used by derived code).
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, or reports the first structural mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    ref other => return type_err("integer", other),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match *v {
                    Value::I64(i) => u64::try_from(i)
                        .map_err(|_| Error::custom("negative integer for unsigned field"))?,
                    Value::U64(u) => u,
                    ref other => return type_err("integer", other),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or(()).or_else(|_| type_err("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($i),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$i])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected tuple of length {LEN}, found array of {}",
                        items.len()
                    ))),
                    other => type_err("array (tuple)", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, like serde_json's BTreeMap.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(
            f64::from_value(&95.83474401824101f64.to_value()).unwrap(),
            95.83474401824101
        );
        assert_eq!(
            Option::<f64>::from_value(&Value::Null).unwrap(),
            None::<f64>
        );
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let arr = [1usize, 2, 3];
        let back: [usize; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
        let bad: Result<[usize; 2], _> = Deserialize::from_value(&arr.to_value());
        assert!(bad.is_err());
    }
}
