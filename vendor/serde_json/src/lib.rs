//! Offline vendored subset of `serde_json`, over the vendored serde facade.
//!
//! Provides `to_string` / `to_string_pretty` / `from_str`, the [`json!`]
//! macro, and indexing on [`Value`]. Numbers round-trip exactly: floats are
//! printed with Rust's shortest-roundtrip formatting and parsed with the
//! standard library's correctly rounded `str::parse::<f64>`, so
//! `from_str(&to_string(x)) == x` for every finite `f64` (the behaviour the
//! workspace requests via the upstream `float_roundtrip` feature).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports `null`, object literals with string-literal keys, array
/// literals, and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Like serde_json: non-finite numbers have no JSON form.
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 prints the shortest string that parses back to
    // exactly `f`. Integral values print without a fractional part (`1`),
    // which is still a valid JSON number.
    let _ = write!(out, "{f}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        // Collect raw bytes between escapes, validating UTF-8 in one go at
        // the boundaries (input is &str so it is already valid UTF-8).
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("lone lead surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                    start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        // `str::parse::<f64>` is correctly rounded, so together with the
        // shortest-representation writer this gives exact round-trips.
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [
            95.83474401824101f64,
            1.0,
            0.1,
            -3.0000000000000004,
            1e-300,
            2.2250738585072014e-308,
            f64::MAX,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "roundtrip of {x} via {s}");
        }
    }

    #[test]
    fn integer_boundaries_roundtrip() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
        let s = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&s).unwrap(), i64::MIN);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let cases = ["plain", "with \"quotes\"", "tab\tnewline\n", "uni ¿ 🦀"];
        for c in cases {
            let s = to_string(&String::from(c)).unwrap();
            assert_eq!(from_str::<String>(&s).unwrap(), c);
        }
        assert_eq!(from_str::<String>(r#""🦀""#).unwrap(), "🦀");
    }

    #[test]
    fn json_macro_and_indexing() {
        let mut v = json!({ "name": "lenet", "speedup": 2.5, "tags": [1, 2] });
        assert_eq!(v["name"].as_str(), Some("lenet"));
        assert_eq!(v["speedup"].as_f64(), Some(2.5));
        assert_eq!(v["missing"], Value::Null);
        v["extra"] = json!(7usize);
        assert_eq!(v["extra"].as_f64(), Some(7.0));
    }

    #[test]
    fn pretty_output_parses_back() {
        // Nested maps go through an inner `json!` (the macro takes any
        // serializable expression as a value, not nested literals).
        let v = json!({ "a": [1, 2, 3], "b": json!({ "c": true }) });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
