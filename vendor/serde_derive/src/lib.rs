//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade.
//!
//! The build environment has no crates.io access, so this derive is written
//! directly against `proc_macro` — no `syn`, no `quote`. It parses just
//! enough of the item grammar to recover the type's shape (struct vs enum,
//! field names, variant arities) and emits impls of the facade's
//! `Serialize`/`Deserialize` traits as source text. Field *types* are never
//! inspected: the generated code only calls trait methods, so type
//! resolution is left to the compiler.
//!
//! Supported shapes (everything this workspace derives on):
//! named structs, tuple/newtype structs, unit structs, and enums with unit,
//! newtype, tuple and struct variants. Generic parameters and `#[serde]`
//! attributes are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of a field list.
enum Fields {
    /// `{ a: T, b: U }` — the field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — the arity.
    Tuple(usize),
    /// No fields at all.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the facade's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives the facade's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility qualifiers until the `struct` / `enum` keyword.
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc: the `(crate)` group is consumed
                // by the generic skip below if present.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => return Err("derive input ended before `struct`/`enum`".into()),
        }
    };

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    // Reject generics: a `<` directly after the name.
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive (vendored) does not support generic type `{name}`"
            ));
        }
    }

    if kind == "struct" {
        let fields = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        };
        Ok(Item::Struct { name, fields })
    } else {
        let body = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Parses `vis name: Type, ...` returning the field names. Types are
/// skipped by scanning to the next comma at zero angle-bracket depth
/// (parentheses/brackets/braces are single opaque `Group` tokens, so only
/// `<`/`>` need balancing).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = toks.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                toks.next();
                            }
                        }
                    } else {
                        break s;
                    }
                }
                Some(other) => return Err(format!("unexpected token in fields: {other}")),
                None => return Ok(names),
            }
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        names.push(name);
        skip_type(&mut toks);
    }
}

/// Advances past a type, stopping after the next top-level `,` (or the end).
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        // Skip attributes/visibility opening the next field, detect end.
        loop {
            match toks.peek() {
                None => return count,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(_) => break,
            }
        }
        count += 1;
        skip_type(&mut toks);
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in enum: {other}")),
                None => return Ok(variants),
            }
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle = 0i32;
        while let Some(tok) = toks.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                _ => {}
            }
            toks.next();
        }
        variants.push(Variant { name, fields });
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => obj_expr(names, |f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            serialize_impl(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0))]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inner = obj_expr(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), {inner})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            serialize_impl(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

/// `Value::Object` literal over `fields`, with `accessor` mapping a field
/// name to the expression whose value is serialized.
fn obj_expr(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({}))",
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

fn serialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => named_from_value(name, names),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => tuple_from_value(name, *n, "v"),
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            deserialize_impl(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => data_arms.push_str(&format!(
                        "{vn:?} => {{ {} }}\n",
                        tuple_from_value(&format!("{name}::{vn}"), *n, "inner")
                    )),
                    Fields::Named(fields) => data_arms.push_str(&format!(
                        "{vn:?} => {{ {} }}\n",
                        named_variant_from_value(&format!("{name}::{vn}"), fields)
                    )),
                }
            }
            let body = format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {name}, found {{}}\", other.kind()))),\n\
                 }}"
            );
            deserialize_impl(name, &body)
        }
    }
}

fn named_from_value(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field(pairs, {f:?})?)?"))
        .collect();
    format!(
        "match v {{\n\
             ::serde::Value::Object(pairs) => ::std::result::Result::Ok({name} {{ {} }}),\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected object for {name}, found {{}}\", other.kind()))),\n\
         }}",
        inits.join(", ")
    )
}

/// Like [`named_from_value`] but for a *variant* path (`Enum::Var`): the
/// matched value expression is `inner`, not `v`.
fn named_variant_from_value(path: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field(pairs, {f:?})?)?"))
        .collect();
    format!(
        "match inner {{\n\
             ::serde::Value::Object(pairs) => ::std::result::Result::Ok({path} {{ {} }}),\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected object for {path}, found {{}}\", other.kind()))),\n\
         }}",
        inits.join(", ")
    )
}

fn tuple_from_value(path: &str, arity: usize, src: &str) -> String {
    let elems: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "match {src} {{\n\
             ::serde::Value::Array(items) if items.len() == {arity} => \
                 ::std::result::Result::Ok({path}({})),\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected {arity}-element array for {path}, found {{}}\", \
                 other.kind()))),\n\
         }}",
        elems.join(", ")
    )
}

fn deserialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
